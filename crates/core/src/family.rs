//! Schedule-family inference: affine-in-μ certificates.
//!
//! The paper's optima are closed forms in the problem size — matmul's
//! canonical optimum is `Π(μ) = [μ−1, 2, 1]` with `t° = μ(μ+2)+1`,
//! transitive closure's is `[1, 1, μ+1]` with `t° = μ(μ+3)+1` — yet a
//! solver that treats every μ as a fresh problem re-derives them from
//! scratch each time. This module closes that gap: given ≥ 3 solved
//! instances of the *same canonical problem shape* at different sizes,
//! it fits an affine template `Π(p) = a·p + b` by exact rational
//! interpolation, then tries to discharge the paper's acceptance
//! conditions **for every** `p ≥ p₀` symbolically:
//!
//! * validity `Π(p)·D > 0` — affine in `p`, always decidable
//!   ([`AffineInt::always_positive`]);
//! * rank and conflict-freedom — for `r = n − k = 1` the unique conflict
//!   vector `γ(p)` (Equation 3.2's adjugate) is itself affine in `p`;
//!   when its pointwise gcd content is provably 1 (resultant bound), the
//!   feasibility test of Theorem 3.1 becomes an intersection of rational
//!   intervals, decided exactly;
//! * the objective form `t(p)` — a quadratic, checked against the
//!   symbolic `Σ|π_i(p)|·μ_i(p)` when every sign is stable.
//!
//! Obligations that are *not* affinely decidable (kernel dimension
//! `r ≥ 2`, content not provably constant, unstable signs) fall back to
//! exact spot checks on a deterministic probe set: fresh Procedure 5.1
//! solves at the next sizes beyond the fitted range, compared
//! bit-for-bit. The result is a [`FamilyCertificate`] recording the
//! template, its validity range, which obligations were discharged
//! symbolically vs. by probing, and the objective form — enough for a
//! service layer to answer *any* `p ≥ p₀` by matrix fill-in plus one
//! exact conflict re-check, with zero candidate enumeration.
//!
//! Templates are fitted against the [`TieBreak::LexMax`] representative
//! of the optimum. That is load-bearing: the first-*found* optimum
//! depends on which conflict vectors happen to collapse (gcd content)
//! at each concrete μ, and is demonstrably not affine in μ even for
//! matmul. The lex-greatest accepted schedule of the winning level is
//! the stable representative the closed forms predict.

use crate::budget::Certification;
use crate::canon::CanonicalProblem;
use crate::conflict::ConflictAnalysis;
use crate::error::CfmapError;
use crate::mapping::MappingMatrix;
use crate::search::{Procedure51, TieBreak};
use cfmap_intlin::{AffineInt, IMat, Int, Rat};
use cfmap_model::LinearSchedule;

/// The μ-abstracted shape of a canonical problem: everything that stays
/// fixed across a family, with the parameterized axes marked.
///
/// The size parameter `p` of an instance is its largest bound
/// (`mu.last()`, since canonical `mu` is ascending). An axis whose bound
/// equals `p` is a parameter axis (`None`); any other axis is pinned to
/// its constant bound (`Some(c)`). Two canonical problems belong to the
/// same family iff they agree on dependences, space map, and this
/// per-axis pattern — "differ only in μ".
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FamilyKey {
    /// Canonical dependence columns (μ-independent).
    pub deps: Vec<Vec<i64>>,
    /// Canonical space rows (μ-independent).
    pub space: Vec<Vec<i64>>,
    /// Per-axis bound pattern: `None` ⇒ `μ_i = p`, `Some(c)` ⇒ `μ_i = c`.
    pub shape: Vec<Option<i64>>,
}

impl FamilyKey {
    /// Classify a canonical problem into its family, returning the key
    /// and the instance's size parameter.
    pub fn of(problem: &CanonicalProblem) -> (FamilyKey, i64) {
        let p = *problem.mu.last().expect("canonical problems have ≥ 1 axis");
        let shape = problem
            .mu
            .iter()
            .map(|&m| if m == p { None } else { Some(m) })
            .collect();
        let key = FamilyKey {
            deps: problem.deps.clone(),
            space: problem.space.clone(),
            shape,
        };
        (key, p)
    }

    /// Number of index axes.
    pub fn dims(&self) -> usize {
        self.shape.len()
    }

    /// The canonical `μ` vector at size `p`.
    pub fn mu_at(&self, p: i64) -> Vec<i64> {
        self.shape.iter().map(|s| s.unwrap_or(p)).collect()
    }

    /// The canonical problem at size `p`.
    pub fn problem_at(&self, p: i64) -> CanonicalProblem {
        CanonicalProblem {
            mu: self.mu_at(p),
            deps: self.deps.clone(),
            space: self.space.clone(),
        }
    }

    /// If `mu` matches this family's pattern, return its parameter.
    pub fn param_of_mu(&self, mu: &[i64]) -> Option<i64> {
        if mu.len() != self.shape.len() || mu.is_empty() {
            return None;
        }
        let p = *mu.last().expect("nonempty");
        for (m, s) in mu.iter().zip(&self.shape) {
            let want = s.unwrap_or(p);
            if *m != want {
                return None;
            }
        }
        Some(p)
    }

    /// Each axis bound as an affine form in `p`.
    fn mu_forms(&self) -> Vec<AffineInt> {
        self.shape
            .iter()
            .map(|s| match s {
                Some(c) => AffineInt::from_i64(0, *c),
                None => AffineInt::from_i64(1, 0),
            })
            .collect()
    }
}

/// One solved instance of a family: the canonical-coordinates optimum at
/// one size. Only [`Certification::Optimal`] runs may become instances —
/// the caller must never feed degraded (best-effort) or infeasible
/// outcomes to the fitter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyInstance {
    /// Size parameter (see [`FamilyKey::of`]).
    pub param: i64,
    /// Canonical-coordinates optimal schedule (LexMax representative).
    pub schedule: Vec<i64>,
    /// Optimal objective `Σ|π_i|μ_i`.
    pub objective: i64,
    /// Total execution time `t = objective + 1`.
    pub total_time: i64,
}

/// An affine-in-`p` schedule template with its quadratic objective form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyTemplate {
    /// The family this template covers.
    pub key: FamilyKey,
    /// `π_i(p)` — one affine form per axis.
    pub schedule: Vec<AffineInt>,
    /// Objective `f(p) = c₀ + c₁·p + c₂·p²` (total time is `f + 1`).
    pub objective: [i64; 3],
    /// Smallest fitted size; the certificate covers `p ≥ mu0`.
    pub mu0: i64,
}

impl FamilyTemplate {
    /// Fill in the schedule at size `p` (`None` if an entry overflows i64).
    pub fn schedule_at(&self, p: i64) -> Option<Vec<i64>> {
        let pv = Int::from(p);
        self.schedule.iter().map(|f| f.eval(&pv).to_i64()).collect()
    }

    /// The objective value at size `p`.
    pub fn objective_at(&self, p: i64) -> Option<i64> {
        let [c0, c1, c2] = self.objective;
        c2.checked_mul(p)?
            .checked_add(c1)?
            .checked_mul(p)?
            .checked_add(c0)
    }
}

/// How a proof obligation of the acceptance conditions was discharged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discharge {
    /// Proved for every `p ≥ mu0` by symbolic (affine/interval) reasoning.
    Symbolic,
    /// Validated exactly at the fitted and probed sizes only; every
    /// instantiation additionally re-checks the condition for its own μ.
    Probed,
}

/// One acceptance condition and how it was discharged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofObligation {
    /// `"validity"`, `"rank"`, `"conflict-freedom"` or `"objective-form"`.
    pub name: &'static str,
    /// How it was proved.
    pub discharge: Discharge,
}

/// A certified schedule family: template, validity range, the proof
/// obligations discharged, and the evidence set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyCertificate {
    /// The fitted and verified template.
    pub template: FamilyTemplate,
    /// Sizes of the solver-proven instances the template was fitted on.
    pub fitted: Vec<i64>,
    /// Sizes spot-checked by fresh solves (bit-identical comparison).
    pub probes: Vec<i64>,
    /// Acceptance conditions and how each was discharged.
    pub obligations: Vec<ProofObligation>,
}

impl FamilyCertificate {
    /// True if every obligation was discharged symbolically.
    pub fn fully_symbolic(&self) -> bool {
        self.obligations.iter().all(|o| o.discharge == Discharge::Symbolic)
    }
}

/// Why a family failed to certify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertifyError {
    /// Fewer than [`MIN_INSTANCES`] distinct sizes observed.
    TooFewInstances {
        /// Distinct sizes available.
        have: usize,
    },
    /// The instances do not lie on one affine template (or the
    /// interpolated coefficients are not integers).
    NonAffine {
        /// What deviated.
        what: String,
    },
    /// Symbolic verification found a size at which the template breaks.
    Refuted {
        /// Which acceptance condition fails.
        obligation: &'static str,
        /// A size at which it fails.
        witness: i64,
    },
    /// A probe solve disagreed with the template's prediction.
    ProbeMismatch {
        /// The probed size.
        param: i64,
    },
    /// A probe solve itself failed.
    Search(CfmapError),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::TooFewInstances { have } => {
                write!(f, "need ≥ {MIN_INSTANCES} distinct sizes, have {have}")
            }
            CertifyError::NonAffine { what } => write!(f, "not affine in μ: {what}"),
            CertifyError::Refuted { obligation, witness } => {
                write!(f, "{obligation} refuted at μ = {witness}")
            }
            CertifyError::ProbeMismatch { param } => {
                write!(f, "probe solve at μ = {param} disagrees with template")
            }
            CertifyError::Search(e) => write!(f, "probe solve failed: {e}"),
        }
    }
}

impl CertifyError {
    /// Short stable label for metrics (`cfmapd_family_fit_total{outcome}`).
    pub fn outcome_label(&self) -> &'static str {
        match self {
            CertifyError::TooFewInstances { .. } => "too_few",
            CertifyError::NonAffine { .. } => "rejected_nonaffine",
            CertifyError::Refuted { .. } => "rejected_refuted",
            CertifyError::ProbeMismatch { .. } => "rejected_probe",
            CertifyError::Search(_) => "probe_error",
        }
    }
}

/// Minimum distinct fitted sizes before a template may be inferred.
pub const MIN_INSTANCES: usize = 3;

/// Number of deterministic probe sizes beyond the fitted range.
pub const PROBE_COUNT: usize = 2;

/// Fit an affine template through the instances by exact rational
/// interpolation and verify every instance reproduces bit-for-bit.
///
/// The slope is interpolated from the extreme sizes; intermediate
/// instances are consistency witnesses — any deviation (including
/// non-integer coefficients) rejects the family as non-affine.
pub fn fit(key: &FamilyKey, instances: &[FamilyInstance]) -> Result<FamilyTemplate, CertifyError> {
    let mut sorted: Vec<&FamilyInstance> = instances.iter().collect();
    sorted.sort_by_key(|i| i.param);
    sorted.dedup_by_key(|i| i.param);
    if sorted.len() < MIN_INSTANCES {
        return Err(CertifyError::TooFewInstances { have: sorted.len() });
    }
    let n = key.dims();
    let (first, last) = (sorted[0], sorted[sorted.len() - 1]);
    if first.schedule.len() != n || last.schedule.len() != n {
        return Err(CertifyError::NonAffine { what: "schedule dimension mismatch".into() });
    }
    let dp = last.param - first.param;
    let mut schedule = Vec::with_capacity(n);
    for i in 0..n {
        let dy = last.schedule[i] - first.schedule[i];
        if dy % dp != 0 {
            return Err(CertifyError::NonAffine {
                what: format!("π_{i} slope {dy}/{dp} is not an integer"),
            });
        }
        let slope = dy / dp;
        let offset = first.schedule[i] - slope * first.param;
        schedule.push(AffineInt::from_i64(slope, offset));
    }
    // Objective: exact quadratic through (p, f) at the first, middle and
    // last fitted sizes.
    let mid = sorted[sorted.len() / 2];
    let objective = quadratic_through(
        [(first.param, first.objective), (mid.param, mid.objective), (last.param, last.objective)],
    )
    .ok_or_else(|| CertifyError::NonAffine {
        what: "objective does not lie on an integer quadratic".into(),
    })?;
    let template =
        FamilyTemplate { key: key.clone(), schedule, objective, mu0: first.param };
    // Every instance must reproduce exactly — schedule, objective, time.
    for inst in &sorted {
        let pred = template
            .schedule_at(inst.param)
            .filter(|s| s[..] == inst.schedule[..])
            .is_some();
        let obj_ok = template.objective_at(inst.param) == Some(inst.objective)
            && inst.total_time == inst.objective + 1;
        if !pred || !obj_ok {
            return Err(CertifyError::NonAffine {
                what: format!("instance at μ = {} deviates from the template", inst.param),
            });
        }
    }
    Ok(template)
}

/// Exact quadratic `c₀ + c₁p + c₂p²` through three integer points, if
/// its coefficients are integers (Lagrange over `Rat`).
fn quadratic_through(pts: [(i64, i64); 3]) -> Option<[i64; 3]> {
    let [a, b, c] = pts;
    if a.0 == b.0 || b.0 == c.0 || a.0 == c.0 {
        return None;
    }
    // Newton's divided differences: f[a], f[a,b], f[a,b,c].
    let d0 = Rat::from_i64(a.1);
    let d1 = Rat::new(Int::from(b.1 - a.1), Int::from(b.0 - a.0));
    let d2a = Rat::new(Int::from(c.1 - b.1), Int::from(c.0 - b.0));
    let d2 = &(&d2a - &d1) / &Rat::from_i64(c.0 - a.0);
    // p(x) = d0 + d1(x−a) + d2(x−a)(x−b)
    //      = [d0 − d1·a + d2·a·b] + [d1 − d2(a+b)]·x + d2·x².
    let (pa, pb) = (Rat::from_i64(a.0), Rat::from_i64(b.0));
    let c2 = d2.clone();
    let c1 = &d1 - &(&d2 * &(&pa + &pb));
    let c0 = &(&d0 - &(&d1 * &pa)) + &(&d2 * &(&pa * &pb));
    Some([
        c0.to_int()?.to_i64()?,
        c1.to_int()?.to_i64()?,
        c2.to_int()?.to_i64()?,
    ])
}

/// Symbolically verify a fitted template for **all** `p ≥ mu0`,
/// recording per-obligation discharges. `Err` means the template is
/// *refuted* — it provably breaks at some size, so no certificate may be
/// issued at all.
fn verify_symbolic(template: &FamilyTemplate) -> Result<Vec<ProofObligation>, CertifyError> {
    let key = &template.key;
    let n = key.dims();
    let k = key.space.len() + 1;
    let mu0 = Int::from(template.mu0);
    let mus = key.mu_forms();
    let mut obligations = Vec::new();

    // Validity Π(p)·D > 0: one affine inequality per dependence column —
    // always decidable.
    for (ci, col) in key.deps.iter().enumerate() {
        let mut form = AffineInt::zero();
        for (pi, d) in template.schedule.iter().zip(col) {
            form = form.add(&pi.scale(&Int::from(*d)));
        }
        if !form.always_positive(&mu0) {
            // Find the first failing size as the witness.
            let witness = (template.mu0..template.mu0 + 64)
                .find(|&p| {
                    template
                        .schedule_at(p)
                        .map(|s| s.iter().zip(col).map(|(a, b)| a * b).sum::<i64>() <= 0)
                        .unwrap_or(true)
                })
                .unwrap_or(template.mu0);
            let _ = ci;
            return Err(CertifyError::Refuted { obligation: "validity", witness });
        }
    }
    obligations.push(ProofObligation { name: "validity", discharge: Discharge::Symbolic });

    // Rank + conflict-freedom. Symbolic route: r = n − k = 1, where the
    // unique conflict vector γ(p) (Equation 3.2 adjugate) is affine in p.
    let symbolic_conflict = if n == k + 1 {
        match symbolic_gamma(template) {
            Some(gamma) => {
                // Pointwise content bound: content(p) divides every
                // pairwise resultant and every constant entry.
                let mut bound = Int::zero();
                for (i, gi) in gamma.iter().enumerate() {
                    if gi.is_constant() {
                        bound = bound.gcd(&gi.offset);
                    }
                    for gj in &gamma[i + 1..] {
                        bound = bound.gcd(&cfmap_intlin::affine::pairwise_cross(gi, gj));
                    }
                }
                if bound.is_one() {
                    // content ≡ 1: γ(p) is the primitive kernel vector at
                    // every p (in particular nonzero ⇒ rank k holds), and
                    // Theorem 3.1 feasibility is a rational-interval
                    // problem: the sizes where *no* entry escapes the box
                    // are ∩_i { |γ_i(p)| ≤ μ_i(p) }.
                    let mut bad = cfmap_intlin::RatInterval::all();
                    for (gi, mi) in gamma.iter().zip(&mus) {
                        // |γ_i| ≤ μ_i  ⟺  μ_i − γ_i ≥ 0 ∧ μ_i + γ_i ≥ 0.
                        let upper = mi.sub(gi).nonneg_interval();
                        let lower = mi.add(gi).nonneg_interval();
                        bad = bad.intersect(&upper).intersect(&lower);
                    }
                    if let Some(w) = bad.first_integer_at_least(&mu0) {
                        let witness = w.to_i64().unwrap_or(template.mu0);
                        return Err(CertifyError::Refuted {
                            obligation: "conflict-freedom",
                            witness,
                        });
                    }
                    true
                } else {
                    false // content may collapse at some sizes — probe
                }
            }
            None => false,
        }
    } else {
        false // r ≥ 2: kernel not one-dimensional — probe
    };
    let discharge = if symbolic_conflict { Discharge::Symbolic } else { Discharge::Probed };
    obligations.push(ProofObligation { name: "rank", discharge });
    obligations.push(ProofObligation { name: "conflict-freedom", discharge });

    // Objective form: when every π_i(p) has a stable sign on the ray,
    // Σ|π_i(p)|·μ_i(p) is a concrete quadratic to compare against.
    let mut signs = Vec::with_capacity(n);
    let mut stable = true;
    for pi in &template.schedule {
        if pi.is_zero() {
            signs.push(0i64);
        } else if pi.always_positive(&mu0) {
            signs.push(1);
        } else if pi.neg().always_positive(&mu0) {
            signs.push(-1);
        } else {
            stable = false;
            break;
        }
    }
    let objective_discharge = if stable {
        // Σ σ_i·π_i(p)·μ_i(p): accumulate quadratic coefficients in Int.
        let mut acc = [Int::zero(), Int::zero(), Int::zero()];
        for ((pi, mi), s) in template.schedule.iter().zip(&mus).zip(&signs) {
            let sv = Int::from(*s);
            let p = pi.scale(&sv);
            acc[0] = &acc[0] + &(&p.offset * &mi.offset);
            acc[1] = &(&acc[1] + &(&p.slope * &mi.offset)) + &(&p.offset * &mi.slope);
            acc[2] = &acc[2] + &(&p.slope * &mi.slope);
        }
        let fitted = [
            Int::from(template.objective[0]),
            Int::from(template.objective[1]),
            Int::from(template.objective[2]),
        ];
        if acc == fitted {
            Discharge::Symbolic
        } else {
            // The fitted quadratic went through solver-proven points yet
            // disagrees with the symbolic form: the family's objective is
            // not this quadratic. Refuse to certify.
            return Err(CertifyError::Refuted {
                obligation: "objective-form",
                witness: template.mu0,
            });
        }
    } else {
        Discharge::Probed
    };
    obligations.push(ProofObligation { name: "objective-form", discharge: objective_discharge });
    Ok(obligations)
}

/// The adjugate conflict vector of `T(p) = [S; Π(p)]` as affine forms —
/// `γ_i(p) = (−1)^i · det(T(p) without column i)`. Each determinant is
/// linear in the single affine row, so two exact evaluations determine
/// it; a third is verified as a guard. `None` if the family is not
/// square in the required sense or the interpolation check fails.
fn symbolic_gamma(template: &FamilyTemplate) -> Option<Vec<AffineInt>> {
    let key = &template.key;
    let n = key.dims();
    let p0 = template.mu0;
    let at = |p: i64| -> Option<Vec<Int>> {
        let pi = template.schedule_at(p)?;
        let mut rows: Vec<&[i64]> = key.space.iter().map(Vec::as_slice).collect();
        rows.push(&pi);
        let t = IMat::from_rows(&rows);
        if t.nrows() + 1 != n {
            return None;
        }
        let cols: Vec<usize> = (0..n).collect();
        let mut gamma = Vec::with_capacity(n);
        for i in 0..n {
            let keep: Vec<usize> =
                cols.iter().copied().filter(|&c| c != i).collect();
            let d = t.select_cols(&keep).det();
            gamma.push(if i % 2 == 0 { d } else { -d });
        }
        Some(gamma)
    };
    let (g0, g1, g2) = (at(p0)?, at(p0 + 1)?, at(p0 + 2)?);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let slope = &g1[i] - &g0[i];
        let offset = &g0[i] - &(&slope * &Int::from(p0));
        let form = AffineInt::new(slope, offset);
        // Guard: the adjugate must be affine (it is by construction; a
        // failed check means an arithmetic precondition was violated).
        if form.eval(&Int::from(p0 + 2)) != g2[i] {
            return None;
        }
        out.push(form);
    }
    // Divide out the constant coefficient content (scaling γ is free).
    let mut g = Int::zero();
    for f in &out {
        g = g.gcd(&f.coeff_gcd());
    }
    if g.is_zero() {
        return None; // γ ≡ 0: degenerate (rank < k for every p)
    }
    if !g.is_one() {
        for f in &mut out {
            *f = f.exact_div(&g);
        }
    }
    Some(out)
}

/// Solve the family's canonical problem at size `p` exactly as the
/// service's cold path does: Procedure 5.1 with the LexMax tie-break and
/// the default objective cap. Certificates are only bit-identical to
/// cold solves because both sides run *this* configuration.
pub fn cold_solve(
    key: &FamilyKey,
    p: i64,
) -> Result<Option<FamilyInstance>, CfmapError> {
    let problem = key.problem_at(p);
    let alg = problem.uda("family-probe");
    let space = problem.space_map();
    let outcome = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .solve()?;
    if !matches!(outcome.certification, Certification::Optimal) {
        return Ok(None);
    }
    let opt = outcome.into_mapping().expect("optimal outcome carries a mapping");
    Ok(Some(FamilyInstance {
        param: p,
        schedule: opt.schedule.as_slice().to_vec(),
        objective: opt.objective,
        total_time: opt.total_time,
    }))
}

/// Fit, symbolically verify, and probe a family. On success the
/// certificate covers every `p ≥ mu0` (obligations as recorded); on
/// failure the error says whether the family is non-affine, refuted, or
/// failed a probe.
///
/// The probe set is deterministic: the [`PROBE_COUNT`] sizes immediately
/// after the largest fitted size. Probes are full cold solves compared
/// bit-for-bit, so they double as optimality spot checks beyond the
/// fitted range.
pub fn certify(
    key: &FamilyKey,
    instances: &[FamilyInstance],
) -> Result<FamilyCertificate, CertifyError> {
    let template = fit(key, instances)?;
    let obligations = verify_symbolic(&template)?;
    let mut fitted: Vec<i64> = instances.iter().map(|i| i.param).collect();
    fitted.sort_unstable();
    fitted.dedup();
    let p_max = *fitted.last().expect("nonempty after fit");
    let mut probes = Vec::with_capacity(PROBE_COUNT);
    for step in 1..=PROBE_COUNT as i64 {
        let p = p_max + step;
        let solved = cold_solve(key, p).map_err(CertifyError::Search)?;
        let inst = solved.ok_or(CertifyError::ProbeMismatch { param: p })?;
        let ok = template.schedule_at(p).as_deref() == Some(&inst.schedule[..])
            && template.objective_at(p) == Some(inst.objective);
        if !ok {
            return Err(CertifyError::ProbeMismatch { param: p });
        }
        probes.push(p);
    }
    Ok(FamilyCertificate { template, fitted, probes, obligations })
}

/// A design instantiated from a certificate: the filled-in schedule with
/// its objective — produced with **zero** candidate enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstantiatedDesign {
    /// Canonical-coordinates schedule `Π(p)`.
    pub schedule: Vec<i64>,
    /// Objective `Σ|π_i|μ_i`.
    pub objective: i64,
    /// Total execution time `objective + 1`.
    pub total_time: i64,
}

/// Answer a canonical problem from a certificate: match the family
/// pattern, fill in `Π(p)`, and run one exact acceptance re-check
/// (validity, rank, conflict-freedom) for this concrete μ — no search.
/// `None` when the problem is outside the certificate's range or the
/// re-check fails (callers then fall back to the solver).
pub fn instantiate(
    cert: &FamilyCertificate,
    problem: &CanonicalProblem,
) -> Option<InstantiatedDesign> {
    let template = &cert.template;
    if problem.deps != template.key.deps || problem.space != template.key.space {
        return None;
    }
    let p = template.key.param_of_mu(&problem.mu)?;
    if p < template.mu0 {
        return None;
    }
    let schedule = template.schedule_at(p)?;
    let objective = template.objective_at(p)?;
    // Exact re-check of every acceptance condition at this μ.
    let alg = problem.uda("family-instance");
    let space = problem.space_map();
    let pi = LinearSchedule::new(&schedule);
    if !pi.is_valid_for(&alg.deps) {
        return None;
    }
    let mapping = MappingMatrix::new(space, pi);
    let analysis = ConflictAnalysis::new(&mapping, &alg.index_set);
    if analysis.rank() != mapping.k() || !analysis.is_conflict_free_exact() {
        return None;
    }
    // The objective the paper's search would report for this schedule.
    let recomputed: i64 = schedule
        .iter()
        .zip(alg.index_set.mu())
        .map(|(s, m)| s.abs() * m)
        .sum();
    if recomputed != objective {
        return None;
    }
    Some(InstantiatedDesign { schedule, objective, total_time: objective + 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonicalize;
    use crate::mapping::SpaceMap;
    use cfmap_model::algorithms;

    fn matmul_instances(sizes: &[i64]) -> (FamilyKey, Vec<FamilyInstance>) {
        let mut key = None;
        let mut out = Vec::new();
        for &mu in sizes {
            let alg = algorithms::matmul(mu);
            let s = SpaceMap::row(&[1, 1, -1]);
            let canon = canonicalize(&alg, &s);
            let (k, p) = FamilyKey::of(&canon.problem);
            assert_eq!(p, mu);
            key.get_or_insert(k.clone());
            assert_eq!(key.as_ref(), Some(&k), "one family across sizes");
            let inst = cold_solve(&k, p).unwrap().unwrap();
            out.push(inst);
        }
        (key.unwrap(), out)
    }

    #[test]
    fn matmul_family_certifies_fully_symbolically() {
        let (key, instances) = matmul_instances(&[2, 3, 4]);
        let cert = certify(&key, &instances).expect("matmul is an affine family");
        // Canonical matmul optimum: Π(μ) = [μ−1, 2, 1], t = μ(μ+2)+1.
        assert_eq!(
            cert.template.schedule,
            vec![
                AffineInt::from_i64(1, -1),
                AffineInt::from_i64(0, 2),
                AffineInt::from_i64(0, 1)
            ]
        );
        assert_eq!(cert.template.objective, [0, 2, 1]); // μ² + 2μ
        assert!(cert.fully_symbolic(), "{:?}", cert.obligations);
        assert_eq!(cert.probes, vec![5, 6]);

        // Instantiation far outside the fitted range is bit-identical to
        // a cold solve with zero enumeration.
        for p in [9, 17, 40] {
            let inst = instantiate(&cert, &key.problem_at(p)).expect("in range");
            let cold = cold_solve(&key, p).unwrap().unwrap();
            assert_eq!(inst.schedule, cold.schedule, "μ = {p}");
            assert_eq!(inst.objective, cold.objective);
            assert_eq!(inst.total_time, cold.total_time);
        }
    }

    #[test]
    fn non_affine_data_refuses_to_certify() {
        // π₀ = (p+1)² is the real growth of the bit-level matmul family —
        // quadratic, so the affine fitter must refuse.
        let key = FamilyKey {
            deps: vec![vec![1, 0], vec![0, 1]],
            space: vec![vec![1, 0]],
            shape: vec![None, None],
        };
        let quad = |p: i64| FamilyInstance {
            param: p,
            schedule: vec![(p + 1) * (p + 1), 1],
            objective: p * ((p + 1) * (p + 1) + 1),
            total_time: p * ((p + 1) * (p + 1) + 1) + 1,
        };
        let err = certify(&key, &[quad(2), quad(3), quad(4)]).unwrap_err();
        assert!(matches!(err, CertifyError::NonAffine { .. }), "{err:?}");
        assert_eq!(err.outcome_label(), "rejected_nonaffine");
    }

    #[test]
    fn too_few_instances_refuse() {
        let (key, mut instances) = matmul_instances(&[2, 3]);
        let err = certify(&key, &instances).unwrap_err();
        assert!(matches!(err, CertifyError::TooFewInstances { have: 2 }));
        // Duplicate params do not count.
        instances.push(instances[0].clone());
        let err = certify(&key, &instances).unwrap_err();
        assert!(matches!(err, CertifyError::TooFewInstances { have: 2 }));
    }

    #[test]
    fn tampered_instance_is_inconsistent() {
        let (key, mut instances) = matmul_instances(&[2, 3, 4]);
        instances[1].schedule[0] += 1; // middle witness off the line
        let err = certify(&key, &instances).unwrap_err();
        assert!(matches!(err, CertifyError::NonAffine { .. }), "{err:?}");
    }

    #[test]
    fn instantiate_rejects_outside_family() {
        let (key, instances) = matmul_instances(&[2, 3, 4]);
        let cert = certify(&key, &instances).unwrap();
        // Below the fitted range.
        assert!(instantiate(&cert, &key.problem_at(1)).is_none());
        // A different problem shape.
        let alg = algorithms::transitive_closure(9);
        let s = SpaceMap::row(&[0, 0, 1]);
        let canon = canonicalize(&alg, &s);
        assert!(instantiate(&cert, &canon.problem).is_none());
    }
}
