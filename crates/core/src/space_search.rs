//! Problem 6.1 — space-optimal conflict-free mappings (the paper's stated
//! future work, Section 6).
//!
//! *"Given an n-dimensional uniform dependence algorithm and a linear
//! schedule vector, find a space mapping matrix `S ∈ Z^{(k−1)×n}` such
//! that `T = [S; Π]` is conflict-free and the number of processors plus
//! the wire length of the array is minimized."*
//!
//! We implement the natural instantiation the paper sketches: enumerate
//! candidate space maps with bounded entries in increasing order of a
//! VLSI cost — processor count plus total wire length (Σ per-dependence
//! `‖S·d̄ᵢ‖₁`, the hop distance every datum must be wired for) — and keep
//! the first conflict-free, full-rank candidate. Like Procedure 5.1 this
//! is exact for the cost ordering used; it is intentionally symmetrical
//! to the time-optimal search so the two can be composed (alternate
//! Π-step / S-step, Problem 6.2 style).
//!
//! The screening hot path shares Procedure 5.1's machinery: the fixed
//! `Π` row is pre-eliminated **once** per run ([`HnfPrefix`]) and every
//! candidate only completes its own `S` rows
//! ([`HnfPrefix::complete_rows`]) — sound for the exact condition
//! because rank and the saturated kernel lattice of `[Π; S]` equal those
//! of `[S; Π]` (they depend only on the row span). Exact verdicts go
//! through the process-wide kernel-lattice conflict memo, the candidate
//! space can be quotiented by the problem's symmetry stabilizer under
//! the `LexMax` pin, and [`SpaceSearch::solve_parallel`] shards each
//! cost level over a worker pool — all bit-identical to the sequential
//! unmemoized route (see `tests/space_joint_props.rs`).

use crate::budget::{SearchBudget, SearchOutcome};
use crate::canon::Stabilizer;
use crate::conditions::{check, check_memoized, rule_for, ConditionKind};
use crate::conflict::ConflictAnalysis;
use crate::error::{BudgetLimit, CfmapError};
use crate::mapping::{MappingMatrix, SpaceMap};
use crate::metrics::SearchTelemetry;
use crate::search::{SymmetryMode, TieBreak};
use cfmap_intlin::{hnf_prefix_i64, HnfPrefix, HnfWorkspace, IMat, Int};
use cfmap_model::{LinearSchedule, Uda};
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// The result of a space-optimal search.
#[derive(Clone, Debug)]
pub struct SpaceOptimalMapping {
    /// The chosen space map.
    pub space: SpaceMap,
    /// The full mapping `T = [S; Π]`.
    pub mapping: MappingMatrix,
    /// Number of processors `|S·J|`.
    pub processors: usize,
    /// Total wire length `Σᵢ ‖S·d̄ᵢ‖₁`.
    pub wire_length: i64,
    /// The combined cost that was minimized.
    pub cost: i64,
    /// Candidates examined before acceptance.
    pub candidates_examined: u64,
}

/// One cost level of the candidate space: all candidates of equal VLSI
/// cost, in lexicographically ascending row order (so the *last*
/// acceptance of a level scan is the `LexMax` winner and index order
/// equals lex order for the parallel pruning).
struct CostLevel {
    cost: i64,
    candidates: Vec<Vec<Vec<i64>>>,
    /// Non-representative orbit members dropped by the symmetry quotient.
    pruned: u64,
}

/// Per-level shared state of the sharded parallel space search. Index
/// order equals lex order within a level, so both tie-break prunes are
/// plain atomics over candidate indices.
struct SpaceLevelWork {
    cost: i64,
    candidates: Vec<Vec<Vec<i64>>>,
    /// Work-stealing cursor: workers claim [`SHARD_BATCH`]-sized ranges.
    cursor: AtomicUsize,
    /// `FirstFound` prune: smallest accepted index so far.
    best_first: AtomicU64,
    /// `LexMax` prune: largest accepted index so far, stored as
    /// `idx + 1` (`0` = none yet).
    best_lex: AtomicU64,
    /// Set when a worker's screening panicked.
    panicked: AtomicBool,
    /// First screening error (cost overflow) observed by any worker.
    error: Mutex<Option<CfmapError>>,
    hits: Mutex<Vec<(usize, SpaceOptimalMapping)>>,
    tel: Mutex<SearchTelemetry>,
}

/// Candidates claimed per cursor bump in the sharded parallel search.
const SHARD_BATCH: usize = 16;

/// Problem 6.1 search over space maps with `rows` rows (`rows = 1` for
/// linear arrays, `rows = 2` for 2-D arrays), entries in
/// `[-entry_bound, entry_bound]`.
pub struct SpaceSearch<'a> {
    alg: &'a Uda,
    schedule: &'a LinearSchedule,
    entry_bound: i64,
    rows: usize,
    condition: ConditionKind,
    budget: SearchBudget,
    tie_break: TieBreak,
    symmetry: SymmetryMode,
    memo: bool,
}

impl<'a> SpaceSearch<'a> {
    /// Start a search for `alg` under the given (fixed) schedule.
    pub fn new(alg: &'a Uda, schedule: &'a LinearSchedule) -> Self {
        SpaceSearch {
            alg,
            schedule,
            entry_bound: 2,
            rows: 1,
            condition: ConditionKind::Exact,
            budget: SearchBudget::unlimited(),
            tie_break: TieBreak::default(),
            symmetry: SymmetryMode::default(),
            memo: true,
        }
    }

    /// Bound on `|s_i|` for enumerated space maps (default 2).
    pub fn entry_bound(mut self, bound: i64) -> Self {
        self.entry_bound = bound;
        self
    }

    /// Target array dimensionality `k − 1` (default 1 = linear array;
    /// 2 = mesh). The candidate pool is `O((2b+1)^{rows·n})`, so keep the
    /// entry bound small for 2-D searches. Values outside `1..=2` are
    /// rejected by [`SpaceSearch::solve`] with [`CfmapError::Unsupported`].
    pub fn rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Conflict test to use (default exact).
    pub fn condition(mut self, kind: ConditionKind) -> Self {
        self.condition = kind;
        self
    }

    /// Bound the work performed (candidates screened / wall clock).
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Select how ties among equally-cheap space maps are broken
    /// (default: [`TieBreak::FirstFound`], the first acceptance in lex
    /// order — i.e. the lex-*least* accepted map of the winning level).
    /// [`TieBreak::LexMax`] screens the whole winning cost level and
    /// returns the lexicographically greatest accepted map — the pin the
    /// symmetry quotient requires.
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Select whether the candidate space is quotiented by the problem's
    /// symmetry stabilizer under the pinned `Π` row (default:
    /// [`SymmetryMode::Full`]). Quotienting screens one representative
    /// per orbit and is bit-identical to full enumeration when its
    /// soundness preconditions hold — [`TieBreak::LexMax`],
    /// [`ConditionKind::Exact`], an unlimited budget — and silently
    /// degrades to full enumeration otherwise.
    pub fn symmetry(mut self, mode: SymmetryMode) -> Self {
        self.symmetry = mode;
        self
    }

    /// Route exact conflict verdicts through the process-wide
    /// kernel-lattice memo (default: on); see [`crate::Procedure51::memo`].
    pub fn memo(mut self, on: bool) -> Self {
        self.memo = on;
        self
    }

    /// Cost of a candidate: VLSI sites + wire length. Returns the triple
    /// `(cost, sites, wires)`.
    ///
    /// "Sites" is the bounding-box cell count of the image `S·J` — the
    /// silicon area a rectangular layout must provision (for a 1-row map
    /// with coprime entries this equals the processor count exactly).
    /// Wire length is `Σᵢ ‖S·d̄ᵢ‖₁`, the per-dependence hop distance that
    /// must be wired between neighbouring cells.
    fn cost_of(&self, space: &SpaceMap) -> Result<(i64, usize, i64), CfmapError> {
        vlsi_cost(self.alg, space)
    }

    fn validate(&self) -> Result<(), CfmapError> {
        if !(1..=2).contains(&self.rows) {
            return Err(CfmapError::Unsupported {
                reason: format!(
                    "only 1- and 2-row space maps supported, got {} rows",
                    self.rows
                ),
            });
        }
        if self.alg.dim() != self.schedule.dim() {
            return Err(CfmapError::DimensionMismatch {
                context: "space search: algorithm vs schedule".to_string(),
                expected: self.alg.dim(),
                actual: self.schedule.dim(),
            });
        }
        Ok(())
    }

    /// The active symmetry quotient, or `None` when the mode is off or a
    /// soundness precondition fails. The stabilizer is computed with the
    /// fixed `Π` pinned as a row, so every element `G` satisfies
    /// `Π·G = ±Π`: the exact verdict, rank, and VLSI cost of every
    /// candidate are then invariant over its orbit, and under the
    /// `LexMax` pin the winning candidate is always its own orbit's
    /// representative. An unlimited budget is also required so every
    /// representative of the winning level is guaranteed to be screened.
    fn active_quotient(&self) -> Option<Stabilizer> {
        if self.symmetry != SymmetryMode::Quotient
            || self.tie_break != TieBreak::LexMax
            || self.condition != ConditionKind::Exact
            || !self.budget.is_unlimited()
        {
            return None;
        }
        let pin = SpaceMap::row(self.schedule.as_slice());
        let stab = crate::canon::stabilizer(self.alg, &pin);
        if stab.is_trivial() {
            return None;
        }
        Some(stab)
    }

    /// Pre-eliminate the fixed `Π` row once for the whole run. Only the
    /// exact condition may screen the row-permuted stack `[Π; S]`: its
    /// rank and kernel *lattice* equal those of `[S; Π]`, but the
    /// paper's closed forms read the concrete Hermite multiplier, which
    /// is basis- (hence row-order-) dependent.
    fn screen_prefix(&self) -> Option<HnfPrefix> {
        if self.condition != ConditionKind::Exact {
            return None;
        }
        hnf_prefix_i64(&IMat::from_rows(&[self.schedule.as_slice()]))
    }

    /// Materialize the candidate space as cost levels: canonical nonzero
    /// rows (first nonzero entry positive — negating a row of `S` only
    /// relabels processors), combined into 1- or 2-row maps, grouped by
    /// cost, lex-ascending within each level. When a quotient is active,
    /// non-representative orbit members are dropped here (identically
    /// for the sequential and parallel paths) and tallied per level.
    fn build_levels(&self, quotient: Option<&Stabilizer>) -> Result<Vec<CostLevel>, CfmapError> {
        let n = self.alg.dim();
        let mut rows_pool: Vec<Vec<i64>> = Vec::new();
        let mut row = vec![0i64; n];
        collect_rows(&mut row, 0, self.entry_bound, &mut |r| {
            if r.iter().all(|&x| x == 0) {
                return;
            }
            if r.iter().find(|&&x| x != 0).is_some_and(|&x| x < 0) {
                return; // canonical sign
            }
            rows_pool.push(r.to_vec());
        });

        // The pool is generated in lex-ascending order, so candidates
        // arrive lex-ascending and each level's vector stays sorted.
        let mut levels: BTreeMap<i64, CostLevel> = BTreeMap::new();
        let push = |cost: i64, rows: Vec<Vec<i64>>, levels: &mut BTreeMap<i64, CostLevel>| {
            let level = levels
                .entry(cost)
                .or_insert_with(|| CostLevel { cost, candidates: Vec::new(), pruned: 0 });
            if quotient.is_some_and(|stab| !is_class_representative(stab, &rows)) {
                level.pruned += 1;
            } else {
                level.candidates.push(rows);
            }
        };
        match self.rows {
            1 => {
                for r in &rows_pool {
                    let space = SpaceMap::row(r);
                    let (cost, _, _) = self.cost_of(&space)?;
                    push(cost, vec![r.clone()], &mut levels);
                }
            }
            2 => {
                for (a, r1) in rows_pool.iter().enumerate() {
                    for r2 in rows_pool.iter().skip(a + 1) {
                        let refs: Vec<&[i64]> = vec![r1, r2];
                        let space = SpaceMap::from_rows(&refs);
                        if space.as_mat().rank() < 2 {
                            continue; // degenerate 2-D map
                        }
                        let (cost, _, _) = self.cost_of(&space)?;
                        push(cost, vec![r1.clone(), r2.clone()], &mut levels);
                    }
                }
            }
            _ => unreachable!("rows validated before"),
        }
        Ok(levels.into_values().collect())
    }

    /// Run the search: minimal-cost conflict-free full-rank space map.
    ///
    /// The candidate pool is screened in increasing cost order, so the
    /// first acceptable map is certified `Optimal` (under
    /// [`TieBreak::LexMax`] the whole winning level is screened and the
    /// lex-greatest acceptance returned — equally optimal). Because the
    /// search accepts within the first valid cost level there is no
    /// intermediate best-so-far: a tripped [`SearchBudget`] before any
    /// acceptance is reported as [`CfmapError::BudgetExhausted`].
    pub fn solve(&self) -> Result<SearchOutcome<SpaceOptimalMapping>, CfmapError> {
        self.validate()?;
        let quotient = self.active_quotient();
        let levels = self.build_levels(quotient.as_ref())?;
        let prefix = self.screen_prefix();
        let mut ws = HnfWorkspace::new();
        let mut meter = self.budget.start();
        let mut tel = SearchTelemetry::default();
        for level in &levels {
            tel.orbits_pruned += level.pruned;
            crate::metrics::ORBITS_PRUNED.add(level.pruned);
            let level_start = tel.enumerated;
            let mut best: Option<SpaceOptimalMapping> = None;
            let mut tripped: Option<BudgetLimit> = None;
            for rows in &level.candidates {
                // The charged candidate is still screened (budget N means
                // exactly N candidates examined); acceptance of any
                // screened candidate is the cost-order optimum, trip or
                // not.
                let limit = meter.charge_candidate();
                tel.enumerated += 1;
                let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
                if let Some(found) =
                    self.screen(level.cost, &refs, &mut tel, prefix.as_ref(), &mut ws)?
                {
                    tel.accepted += 1;
                    match self.tie_break {
                        TieBreak::FirstFound => {
                            let mut win = found;
                            tel.record_level(level.cost, tel.enumerated - level_start, 1);
                            win.candidates_examined = meter.candidates;
                            return Ok(SearchOutcome::optimal(win, meter.candidates)
                                .with_telemetry(tel));
                        }
                        // Lex-ascending scan: every later acceptance is
                        // lex-greater, so overwriting keeps the LexMax.
                        TieBreak::LexMax => best = Some(found),
                    }
                }
                if let Some(limit) = limit {
                    tripped = Some(limit);
                    break;
                }
            }
            let level_enumerated = tel.enumerated - level_start;
            if let Some(mut win) = best {
                // Mid-level budget trips still return the best
                // representative screened so far — the cost level is
                // already proven optimal.
                tel.record_level(level.cost, level_enumerated, 1);
                win.candidates_examined = meter.candidates;
                return Ok(SearchOutcome::optimal(win, meter.candidates).with_telemetry(tel));
            }
            tel.record_level(level.cost, level_enumerated, 0);
            if let Some(limit) = tripped {
                return Err(CfmapError::BudgetExhausted {
                    limit,
                    candidates_examined: meter.candidates,
                });
            }
        }
        Ok(SearchOutcome::infeasible(meter.candidates).with_telemetry(tel))
    }

    /// [`Self::solve`] with each cost level's candidates screened by a
    /// pool of `threads` workers sharing mid-level pruning state, exactly
    /// as [`crate::Procedure51::solve_parallel`]: the final winner is
    /// re-derived from the complete hit list, so the result is
    /// deterministic and bit-identical to the sequential search. A
    /// non-unlimited budget delegates to the sequential search so budget
    /// semantics stay exactly deterministic.
    pub fn solve_parallel(
        &self,
        threads: usize,
    ) -> Result<SearchOutcome<SpaceOptimalMapping>, CfmapError> {
        assert!(threads >= 1, "need at least one worker");
        if threads == 1 || !self.budget.is_unlimited() {
            return self.solve();
        }
        self.validate()?;
        let quotient = self.active_quotient();
        let levels = self.build_levels(quotient.as_ref())?;
        let prefix = self.screen_prefix();
        let prefix_ref = prefix.as_ref();
        let mut tel = SearchTelemetry::default();
        let mut examined_before = 0u64;

        let slot: Mutex<Option<Arc<SpaceLevelWork>>> = Mutex::new(None);
        let start = Barrier::new(threads + 1);
        let done = Barrier::new(threads + 1);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    start.wait();
                    let Some(level) = slot.lock().unwrap().clone() else { break };
                    let shard = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.process_level_shard(&level, prefix_ref);
                    }));
                    if shard.is_err() {
                        level.panicked.store(true, Ordering::SeqCst);
                    }
                    done.wait();
                });
            }
            let mut run = || -> Result<SearchOutcome<SpaceOptimalMapping>, CfmapError> {
                for lvl in &levels {
                    tel.orbits_pruned += lvl.pruned;
                    crate::metrics::ORBITS_PRUNED.add(lvl.pruned);
                    if lvl.candidates.is_empty() {
                        continue;
                    }
                    let level = Arc::new(SpaceLevelWork {
                        cost: lvl.cost,
                        candidates: lvl.candidates.clone(),
                        cursor: AtomicUsize::new(0),
                        best_first: AtomicU64::new(u64::MAX),
                        best_lex: AtomicU64::new(0),
                        panicked: AtomicBool::new(false),
                        error: Mutex::new(None),
                        hits: Mutex::new(Vec::new()),
                        tel: Mutex::new(SearchTelemetry::default()),
                    });
                    *slot.lock().unwrap() = Some(level.clone());
                    start.wait();
                    done.wait();
                    *slot.lock().unwrap() = None;
                    if level.panicked.load(Ordering::SeqCst) {
                        return Err(CfmapError::Internal {
                            context: format!(
                                "space solve_parallel worker panicked at cost level {}",
                                lvl.cost
                            ),
                        });
                    }
                    if let Some(err) = level.error.lock().unwrap().take() {
                        return Err(err);
                    }
                    let level_tel = std::mem::take(&mut *level.tel.lock().unwrap());
                    let hits = std::mem::take(&mut *level.hits.lock().unwrap());
                    // Index order equals lex order within a level, so
                    // both tie-breaks reduce to index extremes.
                    let best = match self.tie_break {
                        TieBreak::FirstFound => hits.into_iter().min_by_key(|(i, _)| *i),
                        TieBreak::LexMax => hits.into_iter().max_by_key(|(i, _)| *i),
                    };
                    tel.merge(&level_tel);
                    tel.record_level(lvl.cost, level_tel.enumerated, level_tel.accepted);
                    let level_len = level.candidates.len() as u64;
                    if let Some((idx, mut win)) = best {
                        let examined = match self.tie_break {
                            // Sequential equivalence: FirstFound stops at
                            // the winner, LexMax screens the whole level.
                            TieBreak::FirstFound => examined_before + idx as u64 + 1,
                            TieBreak::LexMax => examined_before + level_len,
                        };
                        win.candidates_examined = examined;
                        return Ok(
                            SearchOutcome::optimal(win, examined).with_telemetry(tel.clone())
                        );
                    }
                    examined_before += level_len;
                }
                Ok(SearchOutcome::infeasible(examined_before).with_telemetry(tel.clone()))
            };
            let outcome = run();
            *slot.lock().unwrap() = None;
            start.wait();
            outcome
        })
    }

    /// One worker's share of a cost level: claim batches off the cursor,
    /// screen them (skipping candidates the shared prune state proves
    /// cannot win), and fold acceptances and telemetry back.
    fn process_level_shard(&self, level: &SpaceLevelWork, prefix: Option<&HnfPrefix>) {
        let mut wtel = SearchTelemetry::default();
        let mut ws = HnfWorkspace::new();
        let mut local_hits: Vec<(usize, SpaceOptimalMapping)> = Vec::new();
        'claims: loop {
            let base = level.cursor.fetch_add(SHARD_BATCH, Ordering::Relaxed);
            if base >= level.candidates.len() {
                break;
            }
            let end = (base + SHARD_BATCH).min(level.candidates.len());
            for idx in base..end {
                let rows = &level.candidates[idx];
                wtel.enumerated += 1;
                match self.tie_break {
                    TieBreak::FirstFound => {
                        if (idx as u64) > level.best_first.load(Ordering::Relaxed) {
                            continue;
                        }
                    }
                    TieBreak::LexMax => {
                        // A lex-greater acceptance exists: cannot win.
                        if (idx as u64 + 1) < level.best_lex.load(Ordering::Relaxed) {
                            continue;
                        }
                    }
                }
                let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
                match self.screen(level.cost, &refs, &mut wtel, prefix, &mut ws) {
                    Ok(Some(r)) => {
                        wtel.accepted += 1;
                        match self.tie_break {
                            TieBreak::FirstFound => {
                                level.best_first.fetch_min(idx as u64, Ordering::Relaxed);
                                local_hits.push((idx, r));
                                break 'claims;
                            }
                            TieBreak::LexMax => {
                                level.best_lex.fetch_max(idx as u64 + 1, Ordering::Relaxed);
                                local_hits.push((idx, r));
                            }
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        *level.error.lock().unwrap() = Some(e);
                        break 'claims;
                    }
                }
            }
        }
        level.hits.lock().unwrap().extend(local_hits);
        level.tel.lock().unwrap().merge(&wtel);
    }

    /// Screen a single candidate; `Some` when it is acceptable. The
    /// Hermite form completes the pre-eliminated `Π` prefix with the
    /// candidate's `S` rows when the exact condition is active (rank and
    /// kernel lattice are row-order invariant), and is computed from
    /// scratch on the `[S; Π]` stack otherwise.
    fn screen(
        &self,
        cost: i64,
        refs: &[&[i64]],
        tel: &mut SearchTelemetry,
        prefix: Option<&HnfPrefix>,
        ws: &mut HnfWorkspace,
    ) -> Result<Option<SpaceOptimalMapping>, CfmapError> {
        let space = SpaceMap::from_rows(refs);
        let mapping = MappingMatrix::new(space.clone(), self.schedule.clone());
        // One Hermite decomposition per candidate: its rank is rank(T), so
        // the full-rank gate needs no separate rational elimination, and
        // the unimodular inverse stays uncomputed for rejected candidates.
        let hnf = match prefix.and_then(|p| p.complete_rows(refs, ws)) {
            Some(h) => h,
            None => mapping.hnf(),
        };
        let analysis = ConflictAnalysis::with_hnf(&mapping, &self.alg.index_set, hnf);
        tel.hnf_computations += 1;
        if analysis.rank() != mapping.k() {
            tel.rejected_rank += 1;
            return Ok(None);
        }
        tel.condition_hits.record(rule_for(self.condition, &analysis));
        let verdict = if self.memo {
            check_memoized(self.condition, &analysis, &self.alg.index_set, tel)
        } else {
            check(self.condition, &analysis, &self.alg.index_set)
        };
        if !verdict.accepts() {
            tel.rejected_conflict += 1;
            return Ok(None);
        }
        let (_, processors, wires) = self.cost_of(&space)?;
        Ok(Some(SpaceOptimalMapping {
            space,
            mapping,
            processors,
            wire_length: wires,
            cost,
            candidates_examined: 0, // caller fills in
        }))
    }
}

/// The VLSI cost triple `(sites + wires, sites, wires)` of `space`
/// under `alg` — the ordering Problem 6.1 minimizes, also reused as the
/// space axes of the Pareto frontier so the two searches can never
/// disagree on a candidate's cost.
pub(crate) fn vlsi_cost(alg: &Uda, space: &SpaceMap) -> Result<(i64, usize, i64), CfmapError> {
    let overflow = |what: &str| CfmapError::Overflow {
        context: format!("space-search VLSI cost: {what} does not fit in i64"),
    };
    let mut sites = 1i64;
    for r in 0..space.array_dims() {
        let row = space.as_mat().row(r);
        let (mut lo, mut hi) = (Int::zero(), Int::zero());
        for (i, c) in row.iter().enumerate() {
            let m = Int::from(alg.index_set.mu_i(i));
            if c.is_positive() {
                hi += &(c * &m);
            } else {
                lo += &(c * &m);
            }
        }
        let span = (&hi - &lo)
            .to_i64()
            .and_then(|s| s.checked_add(1))
            .ok_or_else(|| overflow("processor span"))?;
        sites = sites.checked_mul(span).ok_or_else(|| overflow("site count"))?;
    }
    let sd = space.as_mat() * alg.deps.as_mat();
    let mut wires = 0i64;
    for c in 0..sd.ncols() {
        for r in 0..sd.nrows() {
            let hop = sd.get(r, c).abs().to_i64().ok_or_else(|| overflow("wire length"))?;
            wires = wires.checked_add(hop).ok_or_else(|| overflow("total wire length"))?;
        }
    }
    let cost = sites.checked_add(wires).ok_or_else(|| overflow("sites + wires"))?;
    Ok((cost, sites as usize, wires))
}

pub(crate) fn collect_rows(row: &mut Vec<i64>, idx: usize, bound: i64, f: &mut impl FnMut(&[i64])) {
    if idx == row.len() {
        f(row);
        return;
    }
    for v in -bound..=bound {
        row[idx] = v;
        collect_rows(row, idx + 1, bound, f);
    }
    row[idx] = 0;
}

/// Flip a row to canonical sign (first nonzero entry positive) — the
/// convention of the candidate pool. Orbit images must be re-canonicalized
/// before lex comparison because a stabilizer element may negate a row,
/// and `S` vs `−S` is the same design (processor relabeling).
pub(crate) fn canon_sign(mut row: Vec<i64>) -> Vec<i64> {
    if row.iter().find(|&&v| v != 0).is_some_and(|&v| v < 0) {
        for v in &mut row {
            *v = -*v;
        }
    }
    row
}

/// True when `rows` is its orbit's representative on the canonical
/// candidate pool: no stabilizer element maps it (after per-row sign
/// canonicalization and row sorting — rows of `S` are an unordered set up
/// to sign) to a lex-greater candidate. Every orbit has exactly one
/// representative under this rule, and it is the orbit's lex-greatest
/// member, so the `LexMax` winner is always a representative.
pub(crate) fn is_class_representative(stab: &Stabilizer, rows: &[Vec<i64>]) -> bool {
    for g in stab.elements() {
        let mut image: Vec<Vec<i64>> = rows.iter().map(|r| canon_sign(g.apply(r))).collect();
        image.sort();
        if image.as_slice() > rows {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfmap_model::algorithms;

    #[test]
    fn matmul_space_search_under_optimal_schedule() {
        // Fix the paper's optimal Π = [1, μ, 1] and search for S.
        let mu = 4;
        let alg = algorithms::matmul(mu);
        let pi = LinearSchedule::new(&[1, mu, 1]);
        let sol = SpaceSearch::new(&alg, &pi).solve().unwrap().expect_optimal("some S works");
        // Whatever is found must be genuinely conflict-free and low-cost.
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.mapping.has_full_rank());
        // The paper's S = [1,1,−1] costs 13 PEs + 3 wires = 16; the search
        // result can only be at most that.
        assert!(sol.cost <= 16, "cost {} worse than the paper's design", sol.cost);
        assert_eq!(sol.processors as i64 + sol.wire_length, sol.cost);
    }

    #[test]
    fn transitive_closure_space_search() {
        let mu = 4;
        let alg = algorithms::transitive_closure(mu);
        let pi = LinearSchedule::new(&[mu + 1, 1, 1]);
        let sol = SpaceSearch::new(&alg, &pi).solve().unwrap().expect_optimal("some S works");
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        // The paper's S = [0, 0, 1]: 5 PEs, wires |Sd̄| = (1,0,1,0,1) → 3,
        // cost 8. The search must match or beat it.
        assert!(sol.cost <= 8, "cost {}", sol.cost);
    }

    #[test]
    fn two_row_search_for_bitlevel_kernel() {
        // 4-D bit-level convolution onto a 2-D array: fix a schedule and
        // search 2-row space maps.
        let alg = algorithms::bitlevel_convolution(2, 2);
        let pi = LinearSchedule::new(&[1, 1, 1, 3]);
        assert!(pi.is_valid_for(&alg.deps));
        let sol = SpaceSearch::new(&alg, &pi)
            .rows(2)
            .entry_bound(1)
            .solve()
            .unwrap()
            .expect_optimal("some 2-D space map works");
        assert_eq!(sol.space.array_dims(), 2);
        assert!(sol.mapping.has_full_rank());
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.processors >= 1);
    }

    #[test]
    fn three_rows_rejected() {
        let alg = algorithms::matmul(2);
        let pi = LinearSchedule::new(&[1, 2, 1]);
        let err = SpaceSearch::new(&alg, &pi).rows(3).solve().unwrap_err();
        assert!(matches!(&err, CfmapError::Unsupported { reason } if reason.contains("3 rows")));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let alg = algorithms::matmul(2);
        let pi = LinearSchedule::new(&[1, 2]); // 2-D schedule, 3-D algorithm
        let err = SpaceSearch::new(&alg, &pi).solve().unwrap_err();
        assert!(matches!(err, CfmapError::DimensionMismatch { expected: 3, actual: 2, .. }));
    }

    #[test]
    fn budget_exhaustion_is_reported_deterministically() {
        let alg = algorithms::matmul(4);
        let pi = LinearSchedule::new(&[1, 4, 1]);
        let full = SpaceSearch::new(&alg, &pi).solve().unwrap();
        let accepted_at = full.candidates_examined;
        assert!(accepted_at > 1, "need a multi-candidate search for this test");
        // Stop one candidate short of the acceptance point: first-accept
        // searches hold no best-so-far, so exhaustion is an error.
        let err = SpaceSearch::new(&alg, &pi)
            .budget(SearchBudget::candidates(accepted_at - 1))
            .solve()
            .unwrap_err();
        assert!(matches!(
            err,
            CfmapError::BudgetExhausted { candidates_examined, .. }
                if candidates_examined == accepted_at - 1
        ));
        // A budget that reaches the acceptance point still certifies
        // Optimal: cost-order first-accept is exact.
        let out = SpaceSearch::new(&alg, &pi)
            .budget(SearchBudget::candidates(accepted_at))
            .solve()
            .unwrap();
        assert!(out.is_optimal());
    }

    #[test]
    fn no_solution_when_schedule_forces_conflicts() {
        // Π = [1, 1, 1] over the cube: any 1-row S gives a 2×3 T whose
        // kernel contains a small vector? Not necessarily — but with
        // entry bound 0 candidates vanish entirely.
        let alg = algorithms::matmul(3);
        let pi = LinearSchedule::new(&[1, 1, 1]);
        let out = SpaceSearch::new(&alg, &pi).entry_bound(0).solve().unwrap();
        assert_eq!(out.certification, crate::budget::Certification::Infeasible);
        assert!(out.mapping().is_none());
    }

    #[test]
    fn cost_accounts_both_terms() {
        let alg = algorithms::matmul(2);
        let pi = LinearSchedule::new(&[1, 2, 1]);
        let search = SpaceSearch::new(&alg, &pi);
        let (cost, pes, wires) = search.cost_of(&SpaceMap::row(&[1, 1, -1])).unwrap();
        assert_eq!(pes, 7); // span of j1+j2−j3 over {0..2}³: −2..4
        assert_eq!(wires, 3); // |Sd̄ᵢ| = 1+1+1
        assert_eq!(cost, 10);
    }

    #[test]
    fn outcome_carries_search_telemetry() {
        let alg = algorithms::matmul(4);
        let pi = LinearSchedule::new(&[1, 4, 1]);
        let out = SpaceSearch::new(&alg, &pi).solve().unwrap();
        let t = &out.telemetry;
        assert_eq!(t.enumerated, out.candidates_examined);
        assert_eq!(t.accepted, 1);
        assert!(t.hnf_computations >= 1);
        // The rank gate reuses the per-candidate HNF, so rank-rejected
        // candidates cost an HNF but never reach a condition test.
        assert_eq!(t.condition_hits.total(), t.hnf_computations - t.rejected_rank);
        // Exact-memoized: every condition dispatch is a memo hit or miss
        // (small candidates always canonicalize, r = 0 cannot occur for
        // a 2×3 stack of rank 2).
        assert_eq!(t.memo_hits + t.memo_misses, t.condition_hits.exact);
    }

    #[test]
    fn examined_counter_monotone_in_bound() {
        let alg = algorithms::matmul(2);
        let pi = LinearSchedule::new(&[1, 2, 1]);
        let a = SpaceSearch::new(&alg, &pi).entry_bound(1).solve().unwrap().expect_optimal("1");
        let b = SpaceSearch::new(&alg, &pi).entry_bound(2).solve().unwrap().expect_optimal("2");
        // Larger candidate pools can only find equal-or-better optima.
        assert!(b.cost <= a.cost);
    }

    #[test]
    fn memo_off_is_bit_identical() {
        let alg = algorithms::matmul(4);
        let pi = LinearSchedule::new(&[1, 4, 1]);
        let on = SpaceSearch::new(&alg, &pi).solve().unwrap().expect_optimal("on");
        let off =
            SpaceSearch::new(&alg, &pi).memo(false).solve().unwrap().expect_optimal("off");
        assert_eq!(on.space, off.space);
        assert_eq!(on.cost, off.cost);
        assert_eq!(on.candidates_examined, off.candidates_examined);
    }

    #[test]
    fn lexmax_returns_lex_greatest_of_winning_level() {
        let alg = algorithms::matmul(4);
        let pi = LinearSchedule::new(&[1, 4, 1]);
        let first = SpaceSearch::new(&alg, &pi).solve().unwrap().expect_optimal("ff");
        let lexmax = SpaceSearch::new(&alg, &pi)
            .tie_break(TieBreak::LexMax)
            .solve()
            .unwrap()
            .expect_optimal("lm");
        // Same optimal cost, lex-greater-or-equal representative.
        assert_eq!(lexmax.cost, first.cost);
        let (f, l) = (first.space.as_mat().row(0), lexmax.space.as_mat().row(0));
        let f: Vec<i64> = (0..f.dim()).map(|i| f[i].to_i64().unwrap()).collect();
        let l: Vec<i64> = (0..l.dim()).map(|i| l[i].to_i64().unwrap()).collect();
        assert!(l >= f, "LexMax {l:?} must be ≥ FirstFound {f:?}");
    }

    #[test]
    fn quotient_and_parallel_match_sequential_lexmax() {
        for (alg, pi) in [
            (algorithms::matmul(4), LinearSchedule::new(&[1, 4, 1])),
            (algorithms::transitive_closure(4), LinearSchedule::new(&[5, 1, 1])),
        ] {
            let base = SpaceSearch::new(&alg, &pi)
                .tie_break(TieBreak::LexMax)
                .solve()
                .unwrap()
                .expect_optimal("base");
            let quot_out = SpaceSearch::new(&alg, &pi)
                .tie_break(TieBreak::LexMax)
                .symmetry(SymmetryMode::Quotient)
                .solve()
                .unwrap();
            let quot = quot_out.clone().expect_optimal("quot");
            assert_eq!(quot.space, base.space);
            assert_eq!(quot.cost, base.cost);
            for threads in [2usize, 4] {
                let par = SpaceSearch::new(&alg, &pi)
                    .tie_break(TieBreak::LexMax)
                    .symmetry(SymmetryMode::Quotient)
                    .solve_parallel(threads)
                    .unwrap()
                    .expect_optimal("par");
                assert_eq!(par.space, quot.space);
                assert_eq!(par.cost, quot.cost);
                assert_eq!(par.candidates_examined, quot.candidates_examined);
            }
        }
    }
}
