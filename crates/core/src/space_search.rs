//! Problem 6.1 — space-optimal conflict-free mappings (the paper's stated
//! future work, Section 6).
//!
//! *"Given an n-dimensional uniform dependence algorithm and a linear
//! schedule vector, find a space mapping matrix `S ∈ Z^{(k−1)×n}` such
//! that `T = [S; Π]` is conflict-free and the number of processors plus
//! the wire length of the array is minimized."*
//!
//! We implement the natural instantiation the paper sketches: enumerate
//! candidate space maps with bounded entries in increasing order of a
//! VLSI cost — processor count plus total wire length (Σ per-dependence
//! `‖S·d̄ᵢ‖₁`, the hop distance every datum must be wired for) — and keep
//! the first conflict-free, full-rank candidate. Like Procedure 5.1 this
//! is exact for the cost ordering used; it is intentionally symmetrical
//! to the time-optimal search so the two can be composed (alternate
//! Π-step / S-step, Problem 6.2 style).

use crate::budget::{SearchBudget, SearchOutcome};
use crate::conditions::{check, ConditionKind};
use crate::conflict::ConflictAnalysis;
use crate::error::CfmapError;
use crate::mapping::{MappingMatrix, SpaceMap};
use crate::metrics::SearchTelemetry;
use cfmap_intlin::Int;
use cfmap_model::{LinearSchedule, Uda};
use std::collections::BTreeSet;

/// The result of a space-optimal search.
#[derive(Clone, Debug)]
pub struct SpaceOptimalMapping {
    /// The chosen space map.
    pub space: SpaceMap,
    /// The full mapping `T = [S; Π]`.
    pub mapping: MappingMatrix,
    /// Number of processors `|S·J|`.
    pub processors: usize,
    /// Total wire length `Σᵢ ‖S·d̄ᵢ‖₁`.
    pub wire_length: i64,
    /// The combined cost that was minimized.
    pub cost: i64,
    /// Candidates examined before acceptance.
    pub candidates_examined: u64,
}

/// Problem 6.1 search over space maps with `rows` rows (`rows = 1` for
/// linear arrays, `rows = 2` for 2-D arrays), entries in
/// `[-entry_bound, entry_bound]`.
pub struct SpaceSearch<'a> {
    alg: &'a Uda,
    schedule: &'a LinearSchedule,
    entry_bound: i64,
    rows: usize,
    condition: ConditionKind,
    budget: SearchBudget,
}

impl<'a> SpaceSearch<'a> {
    /// Start a search for `alg` under the given (fixed) schedule.
    pub fn new(alg: &'a Uda, schedule: &'a LinearSchedule) -> Self {
        SpaceSearch {
            alg,
            schedule,
            entry_bound: 2,
            rows: 1,
            condition: ConditionKind::Exact,
            budget: SearchBudget::unlimited(),
        }
    }

    /// Bound on `|s_i|` for enumerated space maps (default 2).
    pub fn entry_bound(mut self, bound: i64) -> Self {
        self.entry_bound = bound;
        self
    }

    /// Target array dimensionality `k − 1` (default 1 = linear array;
    /// 2 = mesh). The candidate pool is `O((2b+1)^{rows·n})`, so keep the
    /// entry bound small for 2-D searches. Values outside `1..=2` are
    /// rejected by [`SpaceSearch::solve`] with [`CfmapError::Unsupported`].
    pub fn rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Conflict test to use (default exact).
    pub fn condition(mut self, kind: ConditionKind) -> Self {
        self.condition = kind;
        self
    }

    /// Bound the work performed (candidates screened / wall clock).
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Cost of a candidate: VLSI sites + wire length. Returns the triple
    /// `(cost, sites, wires)`.
    ///
    /// "Sites" is the bounding-box cell count of the image `S·J` — the
    /// silicon area a rectangular layout must provision (for a 1-row map
    /// with coprime entries this equals the processor count exactly).
    /// Wire length is `Σᵢ ‖S·d̄ᵢ‖₁`, the per-dependence hop distance that
    /// must be wired between neighbouring cells.
    fn cost_of(&self, space: &SpaceMap) -> Result<(i64, usize, i64), CfmapError> {
        let overflow = |what: &str| CfmapError::Overflow {
            context: format!("space-search VLSI cost: {what} does not fit in i64"),
        };
        let mut sites = 1i64;
        for r in 0..space.array_dims() {
            let row = space.as_mat().row(r);
            let (mut lo, mut hi) = (Int::zero(), Int::zero());
            for (i, c) in row.iter().enumerate() {
                let m = Int::from(self.alg.index_set.mu_i(i));
                if c.is_positive() {
                    hi += &(c * &m);
                } else {
                    lo += &(c * &m);
                }
            }
            let span = (&hi - &lo)
                .to_i64()
                .and_then(|s| s.checked_add(1))
                .ok_or_else(|| overflow("processor span"))?;
            sites = sites.checked_mul(span).ok_or_else(|| overflow("site count"))?;
        }
        let sd = space.as_mat() * self.alg.deps.as_mat();
        let mut wires = 0i64;
        for c in 0..sd.ncols() {
            for r in 0..sd.nrows() {
                let hop =
                    sd.get(r, c).abs().to_i64().ok_or_else(|| overflow("wire length"))?;
                wires = wires.checked_add(hop).ok_or_else(|| overflow("total wire length"))?;
            }
        }
        let cost = sites.checked_add(wires).ok_or_else(|| overflow("sites + wires"))?;
        Ok((cost, sites as usize, wires))
    }

    /// Run the search: minimal-cost conflict-free full-rank space map.
    ///
    /// The candidate pool is screened in increasing cost order, so the
    /// first acceptable map is certified `Optimal`. Because the search
    /// accepts the *first* valid candidate there is no intermediate
    /// best-so-far: a tripped [`SearchBudget`] before acceptance is
    /// reported as [`CfmapError::BudgetExhausted`].
    pub fn solve(&self) -> Result<SearchOutcome<SpaceOptimalMapping>, CfmapError> {
        if !(1..=2).contains(&self.rows) {
            return Err(CfmapError::Unsupported {
                reason: format!(
                    "only 1- and 2-row space maps supported, got {} rows",
                    self.rows
                ),
            });
        }
        if self.alg.dim() != self.schedule.dim() {
            return Err(CfmapError::DimensionMismatch {
                context: "space search: algorithm vs schedule".to_string(),
                expected: self.alg.dim(),
                actual: self.schedule.dim(),
            });
        }
        let n = self.alg.dim();
        // Enumerate canonical nonzero rows (first nonzero entry positive —
        // negating a row of S only relabels processors).
        let mut rows_pool: Vec<Vec<i64>> = Vec::new();
        let mut row = vec![0i64; n];
        collect_rows(&mut row, 0, self.entry_bound, &mut |r| {
            if r.iter().all(|&x| x == 0) {
                return;
            }
            if r.iter().find(|&&x| x != 0).is_some_and(|&x| x < 0) {
                return; // canonical sign
            }
            rows_pool.push(r.to_vec());
        });

        // Candidate space maps ordered by cost.
        let mut candidates: BTreeSet<(i64, Vec<Vec<i64>>)> = BTreeSet::new();
        match self.rows {
            1 => {
                for r in &rows_pool {
                    let space = SpaceMap::row(r);
                    let (cost, _, _) = self.cost_of(&space)?;
                    candidates.insert((cost, vec![r.clone()]));
                }
            }
            2 => {
                for (a, r1) in rows_pool.iter().enumerate() {
                    for r2 in rows_pool.iter().skip(a + 1) {
                        let refs: Vec<&[i64]> = vec![r1, r2];
                        let space = SpaceMap::from_rows(&refs);
                        if space.as_mat().rank() < 2 {
                            continue; // degenerate 2-D map
                        }
                        let (cost, _, _) = self.cost_of(&space)?;
                        candidates.insert((cost, vec![r1.clone(), r2.clone()]));
                    }
                }
            }
            _ => unreachable!("rows validated above"),
        }

        let mut meter = self.budget.start();
        let mut tel = SearchTelemetry::default();
        for (cost, rows) in candidates {
            // The charged candidate is still screened (budget N means
            // exactly N candidates examined); acceptance of any screened
            // candidate is the cost-order optimum, trip or not.
            let limit = meter.charge_candidate();
            tel.enumerated += 1;
            let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
            if let Some(mut found) = self.screen(cost, &refs, &mut tel)? {
                tel.accepted += 1;
                found.candidates_examined = meter.candidates;
                return Ok(SearchOutcome::optimal(found, meter.candidates).with_telemetry(tel));
            }
            if let Some(limit) = limit {
                return Err(CfmapError::BudgetExhausted {
                    limit,
                    candidates_examined: meter.candidates,
                });
            }
        }
        Ok(SearchOutcome::infeasible(meter.candidates).with_telemetry(tel))
    }

    /// Screen a single candidate; `Some` when it is acceptable.
    fn screen(
        &self,
        cost: i64,
        refs: &[&[i64]],
        tel: &mut SearchTelemetry,
    ) -> Result<Option<SpaceOptimalMapping>, CfmapError> {
        let space = SpaceMap::from_rows(refs);
        let mapping = MappingMatrix::new(space.clone(), self.schedule.clone());
        // One Hermite decomposition per candidate: its rank is rank(T), so
        // the full-rank gate needs no separate rational elimination.
        let analysis = ConflictAnalysis::new(&mapping, &self.alg.index_set);
        tel.hnf_computations += 1;
        if analysis.rank() != mapping.k() {
            tel.rejected_rank += 1;
            return Ok(None);
        }
        tel.condition_hits.record(crate::conditions::rule_for(self.condition, &analysis));
        if !check(self.condition, &analysis, &self.alg.index_set).accepts() {
            tel.rejected_conflict += 1;
            return Ok(None);
        }
        let (_, processors, wires) = self.cost_of(&space)?;
        Ok(Some(SpaceOptimalMapping {
            space,
            mapping,
            processors,
            wire_length: wires,
            cost,
            candidates_examined: 0, // caller fills in
        }))
    }
}

fn collect_rows(row: &mut Vec<i64>, idx: usize, bound: i64, f: &mut impl FnMut(&[i64])) {
    if idx == row.len() {
        f(row);
        return;
    }
    for v in -bound..=bound {
        row[idx] = v;
        collect_rows(row, idx + 1, bound, f);
    }
    row[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfmap_model::algorithms;

    #[test]
    fn matmul_space_search_under_optimal_schedule() {
        // Fix the paper's optimal Π = [1, μ, 1] and search for S.
        let mu = 4;
        let alg = algorithms::matmul(mu);
        let pi = LinearSchedule::new(&[1, mu, 1]);
        let sol = SpaceSearch::new(&alg, &pi).solve().unwrap().expect_optimal("some S works");
        // Whatever is found must be genuinely conflict-free and low-cost.
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.mapping.has_full_rank());
        // The paper's S = [1,1,−1] costs 13 PEs + 3 wires = 16; the search
        // result can only be at most that.
        assert!(sol.cost <= 16, "cost {} worse than the paper's design", sol.cost);
        assert_eq!(sol.processors as i64 + sol.wire_length, sol.cost);
    }

    #[test]
    fn transitive_closure_space_search() {
        let mu = 4;
        let alg = algorithms::transitive_closure(mu);
        let pi = LinearSchedule::new(&[mu + 1, 1, 1]);
        let sol = SpaceSearch::new(&alg, &pi).solve().unwrap().expect_optimal("some S works");
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        // The paper's S = [0, 0, 1]: 5 PEs, wires |Sd̄| = (1,0,1,0,1) → 3,
        // cost 8. The search must match or beat it.
        assert!(sol.cost <= 8, "cost {}", sol.cost);
    }

    #[test]
    fn two_row_search_for_bitlevel_kernel() {
        // 4-D bit-level convolution onto a 2-D array: fix a schedule and
        // search 2-row space maps.
        let alg = algorithms::bitlevel_convolution(2, 2);
        let pi = LinearSchedule::new(&[1, 1, 1, 3]);
        assert!(pi.is_valid_for(&alg.deps));
        let sol = SpaceSearch::new(&alg, &pi)
            .rows(2)
            .entry_bound(1)
            .solve()
            .unwrap()
            .expect_optimal("some 2-D space map works");
        assert_eq!(sol.space.array_dims(), 2);
        assert!(sol.mapping.has_full_rank());
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.processors >= 1);
    }

    #[test]
    fn three_rows_rejected() {
        let alg = algorithms::matmul(2);
        let pi = LinearSchedule::new(&[1, 2, 1]);
        let err = SpaceSearch::new(&alg, &pi).rows(3).solve().unwrap_err();
        assert!(matches!(&err, CfmapError::Unsupported { reason } if reason.contains("3 rows")));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let alg = algorithms::matmul(2);
        let pi = LinearSchedule::new(&[1, 2]); // 2-D schedule, 3-D algorithm
        let err = SpaceSearch::new(&alg, &pi).solve().unwrap_err();
        assert!(matches!(err, CfmapError::DimensionMismatch { expected: 3, actual: 2, .. }));
    }

    #[test]
    fn budget_exhaustion_is_reported_deterministically() {
        let alg = algorithms::matmul(4);
        let pi = LinearSchedule::new(&[1, 4, 1]);
        let full = SpaceSearch::new(&alg, &pi).solve().unwrap();
        let accepted_at = full.candidates_examined;
        assert!(accepted_at > 1, "need a multi-candidate search for this test");
        // Stop one candidate short of the acceptance point: first-accept
        // searches hold no best-so-far, so exhaustion is an error.
        let err = SpaceSearch::new(&alg, &pi)
            .budget(SearchBudget::candidates(accepted_at - 1))
            .solve()
            .unwrap_err();
        assert!(matches!(
            err,
            CfmapError::BudgetExhausted { candidates_examined, .. }
                if candidates_examined == accepted_at - 1
        ));
        // A budget that reaches the acceptance point still certifies
        // Optimal: cost-order first-accept is exact.
        let out = SpaceSearch::new(&alg, &pi)
            .budget(SearchBudget::candidates(accepted_at))
            .solve()
            .unwrap();
        assert!(out.is_optimal());
    }

    #[test]
    fn no_solution_when_schedule_forces_conflicts() {
        // Π = [1, 1, 1] over the cube: any 1-row S gives a 2×3 T whose
        // kernel contains a small vector? Not necessarily — but with
        // entry bound 0 candidates vanish entirely.
        let alg = algorithms::matmul(3);
        let pi = LinearSchedule::new(&[1, 1, 1]);
        let out = SpaceSearch::new(&alg, &pi).entry_bound(0).solve().unwrap();
        assert_eq!(out.certification, crate::budget::Certification::Infeasible);
        assert!(out.mapping().is_none());
    }

    #[test]
    fn cost_accounts_both_terms() {
        let alg = algorithms::matmul(2);
        let pi = LinearSchedule::new(&[1, 2, 1]);
        let search = SpaceSearch::new(&alg, &pi);
        let (cost, pes, wires) = search.cost_of(&SpaceMap::row(&[1, 1, -1])).unwrap();
        assert_eq!(pes, 7); // span of j1+j2−j3 over {0..2}³: −2..4
        assert_eq!(wires, 3); // |Sd̄ᵢ| = 1+1+1
        assert_eq!(cost, 10);
    }

    #[test]
    fn outcome_carries_search_telemetry() {
        let alg = algorithms::matmul(4);
        let pi = LinearSchedule::new(&[1, 4, 1]);
        let out = SpaceSearch::new(&alg, &pi).solve().unwrap();
        let t = &out.telemetry;
        assert_eq!(t.enumerated, out.candidates_examined);
        assert_eq!(t.accepted, 1);
        assert!(t.hnf_computations >= 1);
        // The rank gate reuses the per-candidate HNF, so rank-rejected
        // candidates cost an HNF but never reach a condition test.
        assert_eq!(t.condition_hits.total(), t.hnf_computations - t.rejected_rank);
    }

    #[test]
    fn examined_counter_monotone_in_bound() {
        let alg = algorithms::matmul(2);
        let pi = LinearSchedule::new(&[1, 2, 1]);
        let a = SpaceSearch::new(&alg, &pi).entry_bound(1).solve().unwrap().expect_optimal("1");
        let b = SpaceSearch::new(&alg, &pi).entry_bound(2).solve().unwrap().expect_optimal("2");
        // Larger candidate pools can only find equal-or-better optima.
        assert!(b.cost <= a.cost);
    }
}
