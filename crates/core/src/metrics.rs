//! Zero-dependency observability primitives: counters, gauges,
//! fixed-bucket latency histograms, a Prometheus-text registry, and the
//! per-search [`SearchTelemetry`] carried by [`crate::SearchOutcome`].
//!
//! The workspace's hermetic policy (std only, no registry crates) rules
//! out `prometheus`/`metrics`/`tracing`; this module implements the
//! fragment those crates would provide:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomics, `const`-constructible
//!   so process-wide statics (e.g. [`HNF_COMPUTATIONS`]) need no lazy
//!   initialization;
//! * [`Histogram`] — fixed microsecond bucket bounds chosen at
//!   registration, rendered in seconds per Prometheus convention;
//! * [`Registry`] — a get-or-register handle store that renders the
//!   [Prometheus text exposition format] for a `/metrics` endpoint,
//!   including callback gauges for values owned elsewhere (cache sizes);
//! * [`SearchTelemetry`] — deterministic per-search counters (candidates
//!   enumerated / screened / accepted per objective level, HNF
//!   computations, conflict-freedom condition hits by theorem, the
//!   budget limit consumed at exit) threaded through Procedure 5.1 and
//!   the Problem 6.1/6.2 searches.
//!
//! Two layers on purpose: `SearchTelemetry` is a plain value — same
//! search, same numbers, usable in tests and benchmark JSON — while the
//! atomic registry aggregates across threads and requests for a live
//! daemon scrape.
//!
//! [Prometheus text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::error::BudgetLimit;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};
use std::time::Duration;

/// A monotonically increasing counter. `const`-constructible so it can
/// back a process-wide `static`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in microseconds: 100 µs to 5 s
/// in a coarse 1–2.5–5 progression. A cache hit lands in the first
/// bucket; a budgeted wire-sized search in the last few.
pub const DEFAULT_LATENCY_BUCKETS_US: &[u64] = &[
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
];

/// A fixed-bucket histogram of microsecond observations. Bucket bounds
/// are set at construction; counts, sum and total are atomics, so
/// observation is lock-free. Rendered in seconds (cumulative `le`
/// buckets) per Prometheus convention.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds in microseconds, strictly increasing.
    bounds_us: Vec<u64>,
    /// One count per bound, plus a final overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive microsecond upper bounds
    /// (must be strictly increasing; an `+Inf` bucket is implicit).
    pub fn new(bounds_us: &[u64]) -> Histogram {
        debug_assert!(bounds_us.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        Histogram {
            bounds_us: bounds_us.to_vec(),
            buckets: (0..=bounds_us.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation of `us` microseconds.
    pub fn observe_micros(&self, us: u64) {
        let idx = self.bounds_us.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one observation of a [`Duration`].
    pub fn observe(&self, d: Duration) {
        self.observe_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Cumulative counts per bound (Prometheus `le` semantics), ending
    /// with the total (`+Inf`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

/// Format `us` microseconds as a decimal-seconds literal without
/// floating point (`100` → `"0.0001"`), keeping the hermetic wire
/// formats float-free.
fn fmt_seconds(us: u64) -> String {
    let secs = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        format!("{secs}")
    } else {
        let digits = format!("{frac:06}");
        format!("{secs}.{}", digits.trim_end_matches('0'))
    }
}

/// Label set: ordered `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// A histogram owned by a process-wide static (e.g.
    /// [`CANDIDATE_SCREEN_TIME`]) rather than the registry.
    StaticHistogram(&'static Histogram),
    /// A gauge whose value is read at render time (cache entry counts,
    /// process-wide statics).
    Callback(Box<dyn Fn() -> i64 + Send + Sync>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) | Metric::Callback(_) => "gauge",
            Metric::Histogram(_) | Metric::StaticHistogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Labels,
    metric: Metric,
}

/// A registry of named metrics, rendered as Prometheus text.
///
/// Handles are `Arc`s: register once, bump from any thread. Repeated
/// registration with the same `(name, labels)` returns the existing
/// handle, so call sites need not coordinate.
///
/// ```
/// use cfmap_core::metrics::Registry;
///
/// let reg = Registry::new();
/// let hits = reg.counter("cache_hits_total", "Cache hits.", &[]);
/// hits.inc();
/// let text = reg.render_prometheus();
/// assert!(text.contains("# TYPE cache_hits_total counter"));
/// assert!(text.contains("cache_hits_total 1"));
/// ```
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn labels_of(pairs: &[(&str, &str)]) -> Labels {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let labels = Self::labels_of(labels);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Metric::Counter(c) = &e.metric {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            labels,
            metric: Metric::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let labels = Self::labels_of(labels);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Metric::Gauge(g) = &e.metric {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            labels,
            metric: Metric::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Get or register a histogram with the given microsecond bounds.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds_us: &[u64],
    ) -> Arc<Histogram> {
        let labels = Self::labels_of(labels);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Metric::Histogram(h) = &e.metric {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::new(bounds_us));
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            labels,
            metric: Metric::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Register (or replace) a histogram owned by a process-wide static,
    /// so observations made anywhere (e.g. inside Procedure 5.1's
    /// candidate screen) render alongside registry-owned metrics.
    pub fn histogram_static(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: &'static Histogram,
    ) {
        let labels = Self::labels_of(labels);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.retain(|e| !(e.name == name && e.labels == labels));
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            labels,
            metric: Metric::StaticHistogram(h),
        });
    }

    /// Register (or replace) a gauge whose value is computed at render
    /// time — for quantities owned by another component, like cache
    /// entry counts or the process-wide [`HNF_COMPUTATIONS`] static.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        let labels = Self::labels_of(labels);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.retain(|e| !(e.name == name && e.labels == labels));
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            labels,
            metric: Metric::Callback(Box::new(f)),
        });
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` once per family, then samples; `le`
    /// bucket bounds and `_sum` in seconds).
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut described: Vec<&str> = Vec::new();
        // Group families: emit in first-seen name order.
        let mut order: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !order.contains(&e.name.as_str()) {
                order.push(&e.name);
            }
        }
        for family in order {
            for e in entries.iter().filter(|e| e.name == family) {
                if !described.contains(&family) {
                    described.push(family);
                    out.push_str(&format!("# HELP {family} {}\n", escape_help(&e.help)));
                    out.push_str(&format!("# TYPE {family} {}\n", e.metric.type_name()));
                }
                match &e.metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!(
                            "{family}{} {}\n",
                            fmt_labels(&e.labels, None),
                            c.get()
                        ));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!(
                            "{family}{} {}\n",
                            fmt_labels(&e.labels, None),
                            g.get()
                        ));
                    }
                    Metric::Callback(f) => {
                        out.push_str(&format!(
                            "{family}{} {}\n",
                            fmt_labels(&e.labels, None),
                            f()
                        ));
                    }
                    Metric::Histogram(h) => render_histogram(&mut out, family, &e.labels, h),
                    Metric::StaticHistogram(h) => render_histogram(&mut out, family, &e.labels, h),
                }
            }
        }
        out
    }
}

/// Emit the `_bucket`/`_sum`/`_count` sample lines for one histogram.
fn render_histogram(out: &mut String, family: &str, labels: &Labels, h: &Histogram) {
    let cum = h.cumulative();
    for (i, &bound) in h.bounds_us.iter().enumerate() {
        out.push_str(&format!(
            "{family}_bucket{} {}\n",
            fmt_labels(labels, Some(&fmt_seconds(bound))),
            cum[i]
        ));
    }
    out.push_str(&format!(
        "{family}_bucket{} {}\n",
        fmt_labels(labels, Some("+Inf")),
        cum[h.bounds_us.len()]
    ));
    out.push_str(&format!(
        "{family}_sum{} {}\n",
        fmt_labels(labels, None),
        fmt_seconds(h.sum_micros())
    ));
    out.push_str(&format!("{family}_count{} {}\n", fmt_labels(labels, None), h.count()));
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render a label block, optionally with a trailing `le` label
/// (histogram buckets). Empty block for no labels.
fn fmt_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(bound) = le {
        parts.push(format!("le=\"{bound}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Process-wide count of Hermite-normal-form computations — one per
/// [`crate::ConflictAnalysis`] constructed. Every candidate that survives
/// the cheap screens costs one HNF; this counter is the live view of
/// that dominant cost across all searches in the process.
pub static HNF_COMPUTATIONS: Counter = Counter::new();

/// Process-wide count of exact lattice conflict tests
/// ([`crate::ConflictAnalysis::is_conflict_free_exact`] box enumerations).
pub static EXACT_CONFLICT_TESTS: Counter = Counter::new();

/// Process-wide count of candidates skipped by the symmetry quotient —
/// non-representative orbit members Procedure 5.1 never screened because
/// a stabilizer element maps them to a lex-greater equivalent. The
/// service exports this as `cfmap_orbits_pruned_total`.
pub static ORBITS_PRUNED: Counter = Counter::new();

/// Process-wide count of hybrid enumeration→ILP escalations — searches
/// whose [`crate::HybridPolicy`] predicted a level blow-up and handed the
/// problem to the ILP decomposition mid-search. The service exports this
/// as `cfmap_hybrid_escalations_total`.
pub static HYBRID_ESCALATIONS: Counter = Counter::new();

/// Process-wide count of kernel-lattice conflict-memo hits — exact
/// conflict-freedom verdicts answered from the memo because an earlier
/// candidate's saturated kernel lattice coincided over the same index
/// box (see `cfmap_core::conflict`). The service exports this as
/// `cfmap_conflict_memo_hits_total`.
pub static CONFLICT_MEMO_HITS: Counter = Counter::new();

/// Process-wide count of kernel-lattice conflict-memo misses — exact
/// verdicts that had to be computed (and were then recorded). The
/// service exports this as `cfmap_conflict_memo_misses_total`.
pub static CONFLICT_MEMO_MISSES: Counter = Counter::new();

/// Process-wide count of accepted candidate designs discarded by the
/// Pareto dominance filter — points whose objective vector was
/// dominated by (or a duplicate of) another accepted design's. The
/// service exports this as `cfmap_pareto_dominated_pruned_total`.
pub static PARETO_DOMINATED_PRUNED: Counter = Counter::new();

/// Bucket bounds for per-candidate screen time, in microseconds: 1 µs
/// to 100 ms in a 1–2.5–5 progression. The i64 fast path lands in the
/// single-digit-microsecond buckets; a bignum fallback or exact lattice
/// enumeration in the millisecond tail. Much finer at the low end than
/// [`DEFAULT_LATENCY_BUCKETS_US`], which starts at 100 µs — coarser
/// than an entire fast-path screen.
pub const SCREEN_TIME_BUCKETS_US: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
];

/// Process-wide histogram of per-candidate screen time in Procedure 5.1
/// — everything from schedule validation through the conflict-freedom
/// verdict for one candidate `Π` row. `LazyLock` rather than `const`
/// because [`Histogram`] owns heap-allocated bucket vectors.
pub static CANDIDATE_SCREEN_TIME: LazyLock<Histogram> =
    LazyLock::new(|| Histogram::new(SCREEN_TIME_BUCKETS_US));

/// Which closed-form conflict-freedom rule a check dispatched to — the
/// per-theorem axis of the search telemetry (the dispatch of Procedure
/// 5.1 step 5(3) on the kernel dimension `r = n − k`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConditionRule {
    /// `r = 0`: `T` is injective on `Z^n`; trivially conflict-free.
    Trivial,
    /// `r = 1`: Theorem 3.1 (unique conflict vector; exact).
    Theorem31,
    /// `r = 2`: Theorem 4.7 sign-pattern conditions.
    Theorem47,
    /// `r = 3`: Theorem 4.8 sign-pattern conditions.
    Theorem48,
    /// `r > 3`: Theorem 4.5 row-gcd sufficient condition.
    Theorem45,
    /// The exact integer-lattice test ([`ConditionKind::Exact`]).
    ///
    /// [`ConditionKind::Exact`]: crate::conditions::ConditionKind::Exact
    Exact,
}

impl ConditionRule {
    /// Stable snake-case name (metric label / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            ConditionRule::Trivial => "trivial",
            ConditionRule::Theorem31 => "thm_3_1",
            ConditionRule::Theorem47 => "thm_4_7",
            ConditionRule::Theorem48 => "thm_4_8",
            ConditionRule::Theorem45 => "thm_4_5",
            ConditionRule::Exact => "exact",
        }
    }
}

/// Hit counts per conflict-freedom rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleHits {
    /// `r = 0` trivial accepts.
    pub trivial: u64,
    /// Theorem 3.1 dispatches (`r = 1`).
    pub thm_3_1: u64,
    /// Theorem 4.7 dispatches (`r = 2`).
    pub thm_4_7: u64,
    /// Theorem 4.8 dispatches (`r = 3`).
    pub thm_4_8: u64,
    /// Theorem 4.5 fallback dispatches (`r > 3`).
    pub thm_4_5: u64,
    /// Exact lattice tests.
    pub exact: u64,
}

impl RuleHits {
    /// Record one dispatch to `rule`.
    pub fn record(&mut self, rule: ConditionRule) {
        match rule {
            ConditionRule::Trivial => self.trivial += 1,
            ConditionRule::Theorem31 => self.thm_3_1 += 1,
            ConditionRule::Theorem47 => self.thm_4_7 += 1,
            ConditionRule::Theorem48 => self.thm_4_8 += 1,
            ConditionRule::Theorem45 => self.thm_4_5 += 1,
            ConditionRule::Exact => self.exact += 1,
        }
    }

    /// `(name, count)` pairs in dispatch order, for serialization.
    pub fn entries(&self) -> [(&'static str, u64); 6] {
        [
            ("trivial", self.trivial),
            ("thm_3_1", self.thm_3_1),
            ("thm_4_7", self.thm_4_7),
            ("thm_4_8", self.thm_4_8),
            ("thm_4_5", self.thm_4_5),
            ("exact", self.exact),
        ]
    }

    /// Total dispatches.
    pub fn total(&self) -> u64 {
        self.entries().iter().map(|(_, c)| c).sum()
    }

    fn merge(&mut self, other: &RuleHits) {
        self.trivial += other.trivial;
        self.thm_3_1 += other.thm_3_1;
        self.thm_4_7 += other.thm_4_7;
        self.thm_4_8 += other.thm_4_8;
        self.thm_4_5 += other.thm_4_5;
        self.exact += other.exact;
    }
}

/// Per-objective-level search effort (one row of the paper's Table-style
/// search statistics): how many candidates the level enumerated and how
/// many it accepted (0 or 1 for Procedure 5.1 — the first accept wins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelTelemetry {
    /// Objective value `f = Σ |π_i|·μ_i` of the level.
    pub objective: i64,
    /// Candidates enumerated at this level.
    pub enumerated: u64,
    /// Candidates accepted at this level.
    pub accepted: u64,
}

/// Cap on per-level records kept in a [`SearchTelemetry`] — wire-sized
/// problems can have objective caps in the thousands, and the telemetry
/// must stay cheap to carry.
pub const MAX_LEVEL_RECORDS: usize = 64;

/// Deterministic per-search counters, carried by
/// [`crate::SearchOutcome`]. Each gate of Definition 2.2 gets a
/// rejection counter, in screening order; `enumerated` is the total
/// candidate count, so
/// `enumerated = accepted + Σ rejected_* + (candidates cut off by the budget)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchTelemetry {
    /// Candidates generated by the enumeration.
    pub enumerated: u64,
    /// Rejected by condition 1 (`Π·d̄ > 0` fails).
    pub rejected_schedule: u64,
    /// Rejected by the exact pairwise conflict pre-filter (before any
    /// Hermite form is computed).
    pub rejected_prefilter: u64,
    /// Rejected by condition 4 (`rank(T) < k`).
    pub rejected_rank: u64,
    /// Rejected by condition 3 (conflict-freedom test not passed).
    pub rejected_conflict: u64,
    /// Rejected by condition 2 (no routing on the given primitives).
    pub rejected_unroutable: u64,
    /// Candidates accepted (0 or 1 for Procedure 5.1).
    pub accepted: u64,
    /// Hermite normal forms computed (one per surviving candidate).
    pub hnf_computations: u64,
    /// Conflict-freedom dispatches by rule.
    pub condition_hits: RuleHits,
    /// Per-objective-level effort, in increasing objective order, capped
    /// at [`MAX_LEVEL_RECORDS`] entries.
    pub levels: Vec<LevelTelemetry>,
    /// True when level records were dropped to honour the cap.
    pub levels_truncated: bool,
    /// Fallback (mixed-radix) variants screened during budget
    /// degradation.
    pub fallback_screened: u64,
    /// Candidates skipped by the symmetry quotient: orbit members that a
    /// stabilizer element maps to a lex-greater representative, so the
    /// representative's verdict covers them (see `cfmap_core::canon`).
    pub orbits_pruned: u64,
    /// Exact conflict verdicts answered from the kernel-lattice memo.
    pub memo_hits: u64,
    /// Exact conflict verdicts computed and recorded in the memo.
    pub memo_misses: u64,
    /// The budget limit that ended the search, if one tripped.
    pub budget_limit: Option<BudgetLimit>,
}

impl SearchTelemetry {
    /// Record effort at one objective level, honouring the record cap.
    pub fn record_level(&mut self, objective: i64, enumerated: u64, accepted: u64) {
        if enumerated == 0 && accepted == 0 {
            return;
        }
        if self.levels.len() >= MAX_LEVEL_RECORDS {
            self.levels_truncated = true;
            return;
        }
        self.levels.push(LevelTelemetry { objective, enumerated, accepted });
    }

    /// Fold `other` into `self`: counter sums, level records merged by
    /// objective value (both sides sorted ascending). Used to combine
    /// per-worker telemetry from the parallel search and to aggregate
    /// inner searches (Problem 6.2 runs one Procedure 5.1 per space map).
    pub fn merge(&mut self, other: &SearchTelemetry) {
        self.enumerated += other.enumerated;
        self.rejected_schedule += other.rejected_schedule;
        self.rejected_prefilter += other.rejected_prefilter;
        self.rejected_rank += other.rejected_rank;
        self.rejected_conflict += other.rejected_conflict;
        self.rejected_unroutable += other.rejected_unroutable;
        self.accepted += other.accepted;
        self.hnf_computations += other.hnf_computations;
        self.condition_hits.merge(&other.condition_hits);
        self.fallback_screened += other.fallback_screened;
        self.orbits_pruned += other.orbits_pruned;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.budget_limit = self.budget_limit.or(other.budget_limit);
        self.levels_truncated |= other.levels_truncated;
        // Merge sorted level lists, summing equal-objective records.
        let mut merged: Vec<LevelTelemetry> = Vec::new();
        let (mut a, mut b) = (self.levels.iter().peekable(), other.levels.iter().peekable());
        loop {
            let next = match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(_), None) => *a.next().unwrap(),
                (None, Some(_)) => *b.next().unwrap(),
                (Some(x), Some(y)) => {
                    if x.objective == y.objective {
                        let (x, y) = (a.next().unwrap(), b.next().unwrap());
                        LevelTelemetry {
                            objective: x.objective,
                            enumerated: x.enumerated + y.enumerated,
                            accepted: x.accepted + y.accepted,
                        }
                    } else if x.objective < y.objective {
                        *a.next().unwrap()
                    } else {
                        *b.next().unwrap()
                    }
                }
            };
            if merged.len() < MAX_LEVEL_RECORDS {
                merged.push(next);
            } else {
                self.levels_truncated = true;
                break;
            }
        }
        self.levels = merged;
    }

    /// Total rejections across all gates.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_schedule
            + self.rejected_prefilter
            + self.rejected_rank
            + self.rejected_conflict
            + self.rejected_unroutable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[100, 1_000, 10_000]);
        h.observe_micros(50); // ≤ 100
        h.observe_micros(100); // ≤ 100 (inclusive bound)
        h.observe_micros(500); // ≤ 1000
        h.observe_micros(99_999); // +Inf
        assert_eq!(h.cumulative(), vec![2, 3, 3, 4]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_micros(), 50 + 100 + 500 + 99_999);
    }

    #[test]
    fn seconds_formatting_is_float_free() {
        assert_eq!(fmt_seconds(0), "0");
        assert_eq!(fmt_seconds(100), "0.0001");
        assert_eq!(fmt_seconds(2_500_000), "2.5");
        assert_eq!(fmt_seconds(1_000_000), "1");
        assert_eq!(fmt_seconds(1_234_567), "1.234567");
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let reg = Registry::new();
        let ok = reg.counter("requests_total", "Requests served.", &[("route", "/map")]);
        let err = reg.counter("requests_total", "Requests served.", &[("route", "/nope")]);
        ok.add(3);
        err.inc();
        let lat = reg.histogram("latency_seconds", "Latency.", &[], &[1_000, 1_000_000]);
        lat.observe_micros(500);
        lat.observe_micros(2_000_000);
        reg.gauge_fn("entries", "Live entries.", &[], || 42);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total{route=\"/map\"} 3"), "{text}");
        assert!(text.contains("requests_total{route=\"/nope\"} 1"), "{text}");
        assert!(text.contains("# TYPE latency_seconds histogram"), "{text}");
        assert!(text.contains("latency_seconds_bucket{le=\"0.001\"} 1"), "{text}");
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("latency_seconds_count 2"), "{text}");
        assert!(text.contains("entries 42"), "{text}");
        // HELP/TYPE emitted once per family even with two labeled series.
        assert_eq!(text.matches("# TYPE requests_total").count(), 1, "{text}");
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("c", "h", &[]);
        let b = reg.counter("c", "h", &[]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn telemetry_merge_sums_and_interleaves_levels() {
        let mut a = SearchTelemetry {
            enumerated: 10,
            rejected_schedule: 4,
            accepted: 1,
            ..SearchTelemetry::default()
        };
        a.record_level(1, 4, 0);
        a.record_level(3, 6, 1);
        let mut b = SearchTelemetry { enumerated: 7, rejected_rank: 2, ..Default::default() };
        b.record_level(2, 3, 0);
        b.record_level(3, 4, 0);
        a.merge(&b);
        assert_eq!(a.enumerated, 17);
        assert_eq!(a.rejected_total(), 6);
        assert_eq!(
            a.levels,
            vec![
                LevelTelemetry { objective: 1, enumerated: 4, accepted: 0 },
                LevelTelemetry { objective: 2, enumerated: 3, accepted: 0 },
                LevelTelemetry { objective: 3, enumerated: 10, accepted: 1 },
            ]
        );
    }

    #[test]
    fn level_records_are_capped() {
        let mut t = SearchTelemetry::default();
        for i in 0..(MAX_LEVEL_RECORDS as i64 + 10) {
            t.record_level(i + 1, 1, 0);
        }
        assert_eq!(t.levels.len(), MAX_LEVEL_RECORDS);
        assert!(t.levels_truncated);
    }

    #[test]
    fn rule_hits_record_and_total() {
        let mut hits = RuleHits::default();
        hits.record(ConditionRule::Theorem31);
        hits.record(ConditionRule::Theorem31);
        hits.record(ConditionRule::Exact);
        assert_eq!(hits.thm_3_1, 2);
        assert_eq!(hits.total(), 3);
        assert_eq!(ConditionRule::Theorem47.name(), "thm_4_7");
    }
}
