//! Canonical forms of mapping problems.
//!
//! A mapping request is a pure function of the problem `(J, D, S)` (plus
//! solver knobs), but many syntactically different requests describe the
//! *same* problem:
//!
//! * **axis permutation** — relabeling loop indices permutes the entries
//!   of `μ`, the rows of `D` and the columns of `S` simultaneously;
//! * **dependence column order** — the columns of `D` are a set;
//! * **space row scaling / negation / order** — scaling a row of `S` by a
//!   nonzero integer, negating it, or reordering rows changes neither
//!   `ker [S; Π]` nor `rank [S; Π]`, so the conflict structure and the
//!   time-optimal schedule search are untouched (the physical array is a
//!   relabeled/mirrored version of the same design).
//!
//! [`canonicalize`] maps every member of such an equivalence class to one
//! [`CanonicalProblem`] — a plain `Hash`/`Eq` value usable as a design
//! cache key — together with the axis permutation needed to translate a
//! canonical-coordinates schedule back into the caller's coordinates.
//!
//! Note the row normalization above is sound for *schedule* search
//! (Problem 2.2). It deliberately ignores routing costs: wire lengths and
//! interconnection primitives are **not** part of the canonical form, so
//! requests that constrain routing must not be answered from this key.

use crate::mapping::SpaceMap;
use cfmap_intlin::gcd::gcd_i64;
use cfmap_model::{DependenceMatrix, IndexSet, Uda};

/// A mapping problem in canonical coordinates. Derives `Hash`/`Eq`, so it
/// can key a design cache directly.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalProblem {
    /// Index-set bounds `μ`, ascending (ties broken by minimizing the
    /// encoded `(deps, space)` pair over the tie group's permutations).
    pub mu: Vec<i64>,
    /// Dependence columns, lexicographically sorted.
    pub deps: Vec<Vec<i64>>,
    /// Space-map rows: gcd-reduced, sign-normalized (first nonzero entry
    /// positive), lexicographically sorted.
    pub space: Vec<Vec<i64>>,
}

impl CanonicalProblem {
    /// Rebuild the canonical algorithm `(J, D)` (for running a search in
    /// canonical coordinates).
    pub fn uda(&self, name: impl Into<String>) -> Uda {
        let refs: Vec<&[i64]> = self.deps.iter().map(Vec::as_slice).collect();
        Uda::new(name, IndexSet::new(&self.mu), DependenceMatrix::from_columns(&refs))
    }

    /// Rebuild the canonical space map.
    pub fn space_map(&self) -> SpaceMap {
        let refs: Vec<&[i64]> = self.space.iter().map(Vec::as_slice).collect();
        SpaceMap::from_rows(&refs)
    }
}

/// The result of [`canonicalize`]: the canonical problem plus the axis
/// permutation connecting it to the original coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Canonicalization {
    /// The canonical problem (the cache key).
    pub problem: CanonicalProblem,
    /// `perm[c]` is the *original* axis that canonical axis `c` renames.
    pub perm: Vec<usize>,
}

impl Canonicalization {
    /// Translate a schedule found in canonical coordinates back to the
    /// original axis order: `π_original[perm[c]] = π_canonical[c]`.
    pub fn schedule_to_original(&self, pi_canonical: &[i64]) -> Vec<i64> {
        assert_eq!(pi_canonical.len(), self.perm.len(), "schedule dimension mismatch");
        let mut out = vec![0i64; pi_canonical.len()];
        for (c, &orig) in self.perm.iter().enumerate() {
            out[orig] = pi_canonical[c];
        }
        out
    }
}

/// Above this many candidate permutations the tie groups are left in
/// their stable-sorted order instead of being searched exhaustively —
/// still deterministic, but permuted variants of a problem with ≥ 7
/// equal-`μ` axes may then miss each other in the cache (never answering
/// incorrectly, only re-searching).
const MAX_TIE_PERMUTATIONS: usize = 5040;

/// Canonicalize a mapping problem. Panics if `alg` and `space` disagree
/// on the dimension `n` (callers validate shapes first).
pub fn canonicalize(alg: &Uda, space: &SpaceMap) -> Canonicalization {
    assert_eq!(alg.dim(), space.dim(), "algorithm / space map dimension mismatch");
    let n = alg.dim();
    let mu = alg.index_set.mu();

    // Axes sorted by μ (stable), partitioned into equal-μ tie groups.
    let mut base: Vec<usize> = (0..n).collect();
    base.sort_by_key(|&i| mu[i]);
    let mut groups: Vec<(usize, usize)> = Vec::new(); // [start, end) in `base`
    let mut start = 0;
    for i in 1..=n {
        if i == n || mu[base[i]] != mu[base[start]] {
            groups.push((start, i));
            start = i;
        }
    }
    // Saturating throughout: a single group of ≥ 21 axes already
    // overflows `usize` factorially, and a wrapped count could slip
    // under MAX_TIE_PERMUTATIONS and ask for 10²⁰ permutations.
    let tie_count: usize = groups
        .iter()
        .try_fold(1usize, |acc, &(s, e)| {
            let fact = (2..=(e - s)).try_fold(1usize, usize::checked_mul)?;
            acc.checked_mul(fact)
        })
        .unwrap_or(usize::MAX);

    let candidates: Vec<Vec<usize>> = if tie_count > MAX_TIE_PERMUTATIONS {
        vec![base.clone()]
    } else {
        let mut out = vec![Vec::with_capacity(n)];
        for &(s, e) in &groups {
            let group_perms = permutations_of(&base[s..e]);
            out = out
                .into_iter()
                .flat_map(|prefix| {
                    group_perms.iter().map(move |g| {
                        let mut p = prefix.clone();
                        p.extend_from_slice(g);
                        p
                    })
                })
                .collect();
        }
        out
    };

    let mut best: Option<Canonicalization> = None;
    for perm in candidates {
        let cand = encode(alg, space, &perm);
        if best.as_ref().is_none_or(|b| cand.problem < b.problem) {
            best = Some(cand);
        }
    }
    best.expect("at least one candidate permutation")
}

/// Encode the problem under one axis permutation.
fn encode(alg: &Uda, space: &SpaceMap, perm: &[usize]) -> Canonicalization {
    let mu: Vec<i64> = perm.iter().map(|&p| alg.index_set.mu_i(p)).collect();

    let mut deps: Vec<Vec<i64>> = (0..alg.num_deps())
        .map(|i| {
            let col = alg.deps.dep_i64(i);
            perm.iter().map(|&p| col[p]).collect()
        })
        .collect();
    deps.sort();

    let mut rows: Vec<Vec<i64>> = (0..space.array_dims())
        .map(|r| {
            let row = space.as_mat().row(r).to_i64s().expect("space entries fit i64");
            let permuted: Vec<i64> = perm.iter().map(|&p| row[p]).collect();
            normalize_row(permuted)
        })
        .collect();
    rows.sort();

    Canonicalization {
        problem: CanonicalProblem { mu, deps, space: rows },
        perm: perm.to_vec(),
    }
}

/// Divide a row by the gcd of its entries and make the first nonzero
/// entry positive. Kernel- and rank-preserving for `T = [S; Π]`.
///
/// A row containing `i64::MIN` cannot be negated (and `gcd_i64` may
/// return a negative "gcd" for it); such a row is left as-is — still
/// deterministic, merely a weaker canonical form. The service layer
/// bounds wire-input magnitudes well below that.
fn normalize_row(mut row: Vec<i64>) -> Vec<i64> {
    let g = row.iter().fold(0i64, |acc, &v| gcd_i64(acc, v));
    if g > 1 {
        for v in &mut row {
            *v /= g;
        }
    }
    if row.iter().find(|&&v| v != 0).is_some_and(|&first| first < 0)
        && row.iter().all(|v| v.checked_neg().is_some())
    {
        for v in &mut row {
            *v = -*v;
        }
    }
    row
}

/// A digest of the canonicalization's observable *behavior*, not its
/// source: canonicalize a fixed probe set spanning the interesting cases
/// (tie groups, permuted axes, scaled/negated space rows, a 4-D
/// bit-level problem) and hash the resulting canonical keys with FNV-1a.
/// Any change to the canonical form — sort orders, row normalization,
/// tie-breaking — moves this value, which is exactly when persisted
/// cache snapshots keyed under the old form must be refused.
pub fn canon_fingerprint() -> u64 {
    use cfmap_model::algorithms;
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x00000100000001b3;
    let mut h = FNV_OFFSET;
    let mut eat = |v: i64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let probes: Vec<(Uda, Vec<Vec<i64>>)> = vec![
        (algorithms::matmul(3), vec![vec![1, 1, -1]]),
        // The same problem permuted and with the space row scaled and
        // negated — must collapse onto the matmul key above.
        (algorithms::matmul(3).permuted_axes(&[2, 0, 1]), vec![vec![2, -2, -2]]),
        (algorithms::transitive_closure(3), vec![vec![0, 0, 1]]),
        (algorithms::bitlevel_convolution(2, 3), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
    ];
    for (alg, rows) in &probes {
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let canon = canonicalize(alg, &SpaceMap::from_rows(&refs));
        let p = &canon.problem;
        eat(p.mu.len() as i64);
        p.mu.iter().for_each(|&v| eat(v));
        eat(p.deps.len() as i64);
        p.deps.iter().flatten().for_each(|&v| eat(v));
        eat(p.space.len() as i64);
        p.space.iter().flatten().for_each(|&v| eat(v));
        eat(canon.perm.len() as i64);
        canon.perm.iter().for_each(|&v| eat(v as i64));
    }
    h
}

/// One signed axis symmetry `g = (σ, ε)`: the monomial matrix `G` whose
/// column `j` is `ε_j · e_{σ(j)}`. Acting on a schedule row on the right,
/// `(Π G)[j] = ε_j · Π[σ(j)]`; acting on an index/dependence column on
/// the left, `(G v)[σ(j)] = ε_j · v[j]`.
///
/// When `g` stabilizes the problem (see [`stabilizer`]), `Π G` is
/// accepted by Procedure 5.1 at the same objective exactly when `Π` is:
/// validity, rank, conflict-freedom and the objective are all invariant
/// because `G` maps the index set, the dependence columns and the space
/// row span onto themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedPerm {
    /// `perm[j] = σ(j)`: schedule position `j` reads original axis `σ(j)`.
    pub perm: Vec<usize>,
    /// `signs[j] = ε_j ∈ {+1, −1}`.
    pub signs: Vec<i64>,
}

impl SignedPerm {
    /// Apply the symmetry to a schedule row: `out[j] = ε_j · π[σ(j)]`.
    ///
    /// Multiplication saturates, so degenerate `i64::MIN` entries cannot
    /// wrap; [`stabilizer`] refuses to build sign-flipping elements for
    /// problems containing such entries, and enumeration candidates are
    /// objective-bounded, so in-range inputs are exact.
    pub fn apply(&self, pi: &[i64]) -> Vec<i64> {
        assert_eq!(pi.len(), self.perm.len(), "schedule dimension mismatch");
        self.perm.iter().zip(&self.signs).map(|(&p, &s)| pi[p].saturating_mul(s)).collect()
    }

    /// True for the identity element.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(j, &p)| p == j) && self.signs.iter().all(|&s| s == 1)
    }
}

/// Combined cap on `(permutation, sign-pattern)` candidates examined by
/// [`stabilizer`]. When sign patterns would push past it, only the
/// all-positive pattern is tried (sound: the stabilizer shrinks, the
/// quotient gets coarser, correctness is untouched).
const MAX_STABILIZER_CANDIDATES: usize = 100_000;

/// The stabilizer subgroup of a problem `(J, D, S)`: every signed axis
/// permutation fixing the index-set extents, the dependence-column
/// multiset, and the space-map row span. The schedule search quotients
/// its candidate space by this group, screening only the lexicographically
/// greatest member of each orbit (see `Procedure51::symmetry`).
///
/// The identity is never stored; [`Stabilizer::order`] counts it.
#[derive(Clone, Debug)]
pub struct Stabilizer {
    n: usize,
    elements: Vec<SignedPerm>,
}

impl Stabilizer {
    /// The trivial group (identity only) on `n` axes.
    pub fn trivial(n: usize) -> Stabilizer {
        Stabilizer { n, elements: Vec::new() }
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Group order, counting the identity.
    pub fn order(&self) -> usize {
        self.elements.len() + 1
    }

    /// True when only the identity fixes the problem — the quotient
    /// degenerates to full enumeration.
    pub fn is_trivial(&self) -> bool {
        self.elements.is_empty()
    }

    /// The non-identity elements.
    pub fn elements(&self) -> &[SignedPerm] {
        &self.elements
    }

    /// True when `pi` is its orbit's representative: no element maps it
    /// to a lexicographically greater row. Every orbit has exactly one
    /// representative under this rule, and the lex-greatest *accepted*
    /// candidate of a level is always its own orbit's representative —
    /// which is what makes quotiented `TieBreak::LexMax` search
    /// bit-identical to full enumeration.
    pub fn is_representative(&self, pi: &[i64]) -> bool {
        debug_assert_eq!(pi.len(), self.n);
        'outer: for g in &self.elements {
            for j in 0..self.n {
                let v = pi[g.perm[j]].saturating_mul(g.signs[j]);
                if v > pi[j] {
                    return false;
                }
                if v < pi[j] {
                    continue 'outer;
                }
            }
            // g fixes pi: the image is pi itself, not lex-greater.
        }
        true
    }

    /// The full orbit of `pi` (deduplicated, `pi` included, sorted
    /// descending so the representative is first). Used by the
    /// orbit-expansion check proving skipped candidates are dominated.
    pub fn orbit(&self, pi: &[i64]) -> Vec<Vec<i64>> {
        let mut out: Vec<Vec<i64>> = Vec::with_capacity(self.order());
        out.push(pi.to_vec());
        for g in &self.elements {
            out.push(g.apply(pi));
        }
        out.sort_by(|a, b| b.cmp(a));
        out.dedup();
        out
    }

    /// Detect the *class-product* shape: the group is exactly the full
    /// symmetric group acting independently on each class of
    /// interchangeable axes, with no sign flips. Returns, for each axis,
    /// the previous axis of the same class (`None` for class leaders).
    ///
    /// In this shape the orbit representatives are exactly the schedules
    /// whose values are non-increasing along each class, so the
    /// enumerator can prune whole subtrees instead of filtering
    /// candidates one by one.
    pub fn symmetric_classes(&self) -> Option<Vec<Option<usize>>> {
        if self.is_trivial() {
            return None;
        }
        if self.elements.iter().any(|g| g.signs.iter().any(|&s| s != 1)) {
            return None;
        }
        // Union axes connected by any element; each element permutes
        // within these classes by construction of the closure.
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for g in &self.elements {
            for j in 0..self.n {
                let (a, b) = (find(&mut parent, j), find(&mut parent, g.perm[j]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut class_size = vec![0usize; self.n];
        for i in 0..self.n {
            let r = find(&mut parent, i);
            class_size[r] += 1;
        }
        // Full product check: |G| must equal the product of class-size
        // factorials. A proper subgroup (e.g. only a cyclic rotation of
        // three axes) has smaller order and must fall back to the
        // generic representative filter.
        let expected = class_size
            .iter()
            .filter(|&&s| s > 0)
            .try_fold(1usize, |acc, &s| {
                let fact = (2..=s).try_fold(1usize, usize::checked_mul)?;
                acc.checked_mul(fact)
            });
        if expected != Some(self.order()) {
            return None;
        }
        let mut last_seen: Vec<Option<usize>> = vec![None; self.n];
        let mut prev = vec![None; self.n];
        for (i, slot) in prev.iter_mut().enumerate() {
            let r = find(&mut parent, i);
            *slot = last_seen[r];
            last_seen[r] = Some(i);
        }
        Some(prev)
    }
}

/// Compute the stabilizer subgroup of `(J, D, S)`: all signed axis
/// permutations `g` with `μ ∘ σ = μ`, `G·D = D` as a column multiset, and
/// `S·G` row-equivalent to `S` (equal normalized-row multisets, hence
/// equal kernel). Deterministic; conservative under resource caps — when
/// the candidate space is too large the result degrades toward (or to)
/// the trivial group, never an unsound one.
pub fn stabilizer(alg: &Uda, space: &SpaceMap) -> Stabilizer {
    assert_eq!(alg.dim(), space.dim(), "algorithm / space map dimension mismatch");
    let space_rows: Vec<Vec<i64>> = (0..space.array_dims())
        .map(|r| space.as_mat().row(r).to_i64s().expect("space entries fit i64"))
        .collect();
    stabilizer_of_rows(alg, space_rows)
}

/// The stabilizer of the bare problem `(J, D)` with **no** space map
/// pinned: all signed axis permutations with `μ ∘ σ = μ` and `G·D = D` as
/// a column multiset. This is the symmetry group the joint search
/// (Problem 6.2) quotients by — there `S` itself is the search variable,
/// so orbits act on candidate space rows: every element maps a candidate
/// onto one of identical VLSI cost whose inner schedule search has the
/// identical optimum.
pub fn problem_stabilizer(alg: &Uda) -> Stabilizer {
    stabilizer_of_rows(alg, Vec::new())
}

fn stabilizer_of_rows(alg: &Uda, space_rows: Vec<Vec<i64>>) -> Stabilizer {
    let n = alg.dim();
    let mu = alg.index_set.mu();

    let dep_cols: Vec<Vec<i64>> = (0..alg.num_deps()).map(|i| alg.deps.dep_i64(i)).collect();
    // i64::MIN cannot be negated; such degenerate problems get the
    // trivial stabilizer rather than overflow-prone sign arithmetic.
    if dep_cols.iter().chain(&space_rows).flatten().any(|&v| v == i64::MIN) {
        return Stabilizer::trivial(n);
    }
    let mut deps_sorted = dep_cols.clone();
    deps_sorted.sort();
    let mut rows_sorted: Vec<Vec<i64>> =
        space_rows.iter().map(|r| normalize_row(r.clone())).collect();
    rows_sorted.sort();

    // Candidate permutations: products of permutations within equal-μ
    // axis groups (any other permutation already breaks μ invariance).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| mu[i]);
    for &axis in &order {
        match groups.last_mut() {
            Some(g) if mu[g[0]] == mu[axis] => g.push(axis),
            _ => groups.push(vec![axis]),
        }
    }
    let tie_count: usize = groups
        .iter()
        .try_fold(1usize, |acc, g| {
            let fact = (2..=g.len()).try_fold(1usize, usize::checked_mul)?;
            acc.checked_mul(fact)
        })
        .unwrap_or(usize::MAX);
    if tie_count > MAX_TIE_PERMUTATIONS {
        return Stabilizer::trivial(n);
    }
    let mut perms: Vec<Vec<usize>> = vec![vec![usize::MAX; n]];
    for g in &groups {
        let group_perms = permutations_of(g);
        perms = perms
            .into_iter()
            .flat_map(|partial| {
                group_perms.iter().map(move |assignment| {
                    let mut p = partial.clone();
                    // Positions of this group (ascending) receive the
                    // assigned ordering of its members.
                    for (slot, &axis) in g.iter().zip(assignment) {
                        p[*slot] = axis;
                    }
                    p
                })
            })
            .collect();
    }

    let sign_masks: u32 = if n <= 16 && tie_count.saturating_mul(1usize << n) <= MAX_STABILIZER_CANDIDATES
    {
        1u32 << n
    } else {
        1 // all-positive only
    };

    let mut elements = Vec::new();
    let mut signs = vec![1i64; n];
    for perm in &perms {
        for mask in 0..sign_masks {
            for (j, s) in signs.iter_mut().enumerate() {
                *s = if mask >> j & 1 == 1 { -1 } else { 1 };
            }
            let identity =
                mask == 0 && perm.iter().enumerate().all(|(j, &p)| p == j);
            if identity {
                continue;
            }
            if fixes_problem(perm, &signs, &dep_cols, &deps_sorted, &space_rows, &rows_sorted) {
                elements.push(SignedPerm { perm: perm.clone(), signs: signs.clone() });
            }
        }
    }
    Stabilizer { n, elements }
}

/// Invariance check for one candidate element `(σ, ε)`: `G·D` must equal
/// `D` as a column multiset and the normalized rows of `S·G` must equal
/// those of `S`. (μ invariance holds by construction of the candidates.)
fn fixes_problem(
    perm: &[usize],
    signs: &[i64],
    dep_cols: &[Vec<i64>],
    deps_sorted: &[Vec<i64>],
    space_rows: &[Vec<i64>],
    rows_sorted: &[Vec<i64>],
) -> bool {
    let n = perm.len();
    let mut mapped_deps: Vec<Vec<i64>> = dep_cols
        .iter()
        .map(|d| {
            let mut out = vec![0i64; n];
            for j in 0..n {
                // (G d)[σ(j)] = ε_j · d[j]
                out[perm[j]] = signs[j] * d[j];
            }
            out
        })
        .collect();
    mapped_deps.sort();
    if mapped_deps != deps_sorted {
        return false;
    }
    let mut mapped_rows: Vec<Vec<i64>> = space_rows
        .iter()
        .map(|s| {
            // (s G)[j] = ε_j · s[σ(j)]
            let row: Vec<i64> = (0..n).map(|j| signs[j] * s[perm[j]]).collect();
            normalize_row(row)
        })
        .collect();
    mapped_rows.sort();
    mapped_rows == rows_sorted
}

/// All orderings of `items` (lexicographic over positions).
fn permutations_of(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations_of(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_model::algorithms;

    fn key(alg: &Uda, space: &SpaceMap) -> CanonicalProblem {
        canonicalize(alg, space).problem
    }

    #[test]
    fn identity_is_fixed_point() {
        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let a = key(&alg, &s);
        let b = key(&alg, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn axis_permutation_is_invisible() {
        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let reference = key(&alg, &s);
        for perm in permutations_of(&[0, 1, 2]) {
            let alg_p = alg.permuted_axes(&perm);
            let s_row: Vec<i64> = perm.iter().map(|&p| [1i64, 1, -1][p]).collect();
            let s_p = SpaceMap::row(&s_row);
            assert_eq!(key(&alg_p, &s_p), reference, "perm {perm:?}");
        }
    }

    #[test]
    fn dependence_column_order_is_invisible() {
        let alg = algorithms::transitive_closure(4);
        let s = SpaceMap::row(&[0, 0, 1]);
        let reference = key(&alg, &s);
        let reversed: Vec<Vec<i64>> =
            alg.deps.columns_i64().into_iter().rev().collect();
        let refs: Vec<&[i64]> = reversed.iter().map(Vec::as_slice).collect();
        let alg_r = Uda::new(
            alg.name.clone(),
            alg.index_set.clone(),
            DependenceMatrix::from_columns(&refs),
        );
        assert_eq!(key(&alg_r, &s), reference);
    }

    #[test]
    fn space_row_scaling_and_negation_are_invisible() {
        let alg = algorithms::matmul(4);
        let a = key(&alg, &SpaceMap::row(&[1, 1, -1]));
        let b = key(&alg, &SpaceMap::row(&[3, 3, -3]));
        let c = key(&alg, &SpaceMap::row(&[-1, -1, 1]));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn different_problems_get_different_keys() {
        let m4 = algorithms::matmul(4);
        let m5 = algorithms::matmul(5);
        let s = SpaceMap::row(&[1, 1, -1]);
        assert_ne!(key(&m4, &s), key(&m5, &s));
        assert_ne!(
            key(&m4, &SpaceMap::row(&[1, 1, -1])),
            key(&m4, &SpaceMap::row(&[0, 0, 1]))
        );
    }

    #[test]
    fn schedule_round_trips_through_the_permutation() {
        let alg = algorithms::matmul(4);
        // Permute axes with σ = [2, 0, 1] and canonicalize the variant.
        let perm = vec![2usize, 0, 1];
        let alg_p = alg.permuted_axes(&perm);
        let s_p = SpaceMap::row(&[-1, 1, 1]);
        let canon = canonicalize(&alg_p, &s_p);
        // A schedule in canonical coordinates translates back so that
        // Π_original · j equals Π_canonical · j_canonical for all j.
        let pi_c = vec![1i64, 4, 9];
        let pi_o = canon.schedule_to_original(&pi_c);
        let j_orig = vec![2i64, 3, 5];
        let t_orig: i64 = pi_o.iter().zip(&j_orig).map(|(p, j)| p * j).sum();
        let j_canon: Vec<i64> = canon.perm.iter().map(|&p| j_orig[p]).collect();
        let t_canon: i64 = pi_c.iter().zip(&j_canon).map(|(p, j)| p * j).sum();
        assert_eq!(t_orig, t_canon);
    }

    #[test]
    fn huge_tie_groups_saturate_instead_of_overflowing() {
        // 25 equal-μ axes: 25! overflows usize. The tie count must
        // saturate (falling back to the stable-sorted order), not wrap —
        // a wrapped count once slipped under MAX_TIE_PERMUTATIONS and
        // asked for the full factorial expansion.
        let n = 25;
        let mu = vec![3i64; n];
        let mut col = vec![0i64; n];
        col[0] = 1;
        let alg = Uda::new(
            "wide",
            IndexSet::new(&mu),
            DependenceMatrix::from_columns(&[&col]),
        );
        let mut row = vec![0i64; n];
        row[n - 1] = 1;
        let s = SpaceMap::from_rows(&[&row]);
        let canon = canonicalize(&alg, &s);
        assert_eq!(canon.perm.len(), n);
        assert_eq!(canon.problem.mu, mu);
    }

    #[test]
    fn i64_min_space_entry_does_not_overflow() {
        // i64::MIN has no i64 negation; normalize_row must skip the sign
        // flip rather than panic (debug) or wrap (release).
        let alg = Uda::new(
            "minrow",
            IndexSet::new(&[4, 4]),
            DependenceMatrix::from_columns(&[&[1i64, 0]]),
        );
        let s = SpaceMap::from_rows(&[&[i64::MIN, 1]]);
        let a = canonicalize(&alg, &s);
        let b = canonicalize(&alg, &s);
        assert_eq!(a, b, "degenerate rows must still canonicalize deterministically");
    }

    #[test]
    fn canonical_rebuild_matches_key() {
        // uda()/space_map() rebuild a problem whose own canonical key is
        // the key itself (canonicalization is idempotent).
        let alg = algorithms::transitive_closure(3);
        let s = SpaceMap::row(&[0, 0, 2]);
        let k = key(&alg, &s);
        let rebuilt = key(&k.uda("canon"), &k.space_map());
        assert_eq!(k, rebuilt);
    }
}
