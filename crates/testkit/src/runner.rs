//! Property runner: drives a [`Gen`] through N cases, catches assertion
//! panics, shrinks the failing input, and re-panics with a reproducible
//! report (property name, seed, case number, minimal counterexample).

use crate::gen::Gen;
use crate::rng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Marker payload thrown by [`crate::tk_assume!`] to discard a case
/// without failing the property.
#[derive(Clone, Copy, Debug)]
pub struct Discard;

/// Hard ceiling on shrink attempts so pathological generators cannot
/// spin forever after a failure.
const MAX_SHRINK_STEPS: usize = 2048;

/// Discards tolerated per accepted case before the property aborts
/// (mirrors proptest's "too many global rejects").
const MAX_DISCARD_RATIO: u32 = 64;

enum CaseOutcome {
    Pass,
    Discarded,
    Failed(String),
}

fn run_case<V, F: Fn(V)>(prop: &F, value: V) -> CaseOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| prop(value)));
    match result {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => {
            if payload.is::<Discard>() {
                CaseOutcome::Discarded
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                CaseOutcome::Failed((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                CaseOutcome::Failed(s.clone())
            } else {
                CaseOutcome::Failed("<non-string panic payload>".to_string())
            }
        }
    }
}

/// Seed for a property: `TESTKIT_SEED` if set, otherwise a stable FNV-1a
/// hash of the property name, so runs are deterministic but distinct
/// properties explore distinct streams.
pub fn seed_for(name: &str) -> u64 {
    if let Ok(s) = std::env::var("TESTKIT_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return seed;
        }
    }
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Number of cases to run: the per-property request, scaled by the
/// `TESTKIT_CASES` override when present.
pub fn cases_for(requested: u32) -> u32 {
    if let Ok(s) = std::env::var("TESTKIT_CASES") {
        if let Ok(n) = s.trim().parse::<u32>() {
            return n.max(1);
        }
    }
    requested.max(1)
}

/// Run `prop` against `cases` values drawn from `gen`. On failure the
/// input is shrunk and the panic message reports the seed and the
/// minimal counterexample.
pub fn check<G, F>(name: &str, cases: u32, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(G::Value),
{
    let seed = seed_for(name);
    let cases = cases_for(cases);
    let mut rng = Rng::new(seed);
    let mut accepted = 0u32;
    let mut discarded = 0u32;

    while accepted < cases {
        let value = gen.generate(&mut rng);
        match run_case(&prop, value.clone()) {
            CaseOutcome::Pass => accepted += 1,
            CaseOutcome::Discarded => {
                discarded += 1;
                if discarded > MAX_DISCARD_RATIO * cases {
                    panic!(
                        "property '{name}': too many discarded cases \
                         ({discarded} discards for {accepted} accepted); \
                         loosen tk_assume! or tighten the generator \
                         [seed = {seed}]"
                    );
                }
            }
            CaseOutcome::Failed(first_msg) => {
                let (min_value, min_msg, steps) = shrink(gen, &prop, value, first_msg);
                panic!(
                    "property '{name}' failed at case {accepted} \
                     [seed = {seed}, rerun with TESTKIT_SEED={seed}]\n\
                     minimal counterexample (after {steps} shrink steps):\n  \
                     {min_value:?}\n\
                     failure: {min_msg}"
                );
            }
        }
    }
}

fn shrink<G, F>(
    gen: &G,
    prop: &F,
    mut value: G::Value,
    mut msg: String,
) -> (G::Value, String, usize)
where
    G: Gen,
    F: Fn(G::Value),
{
    let mut steps = 0usize;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in gen.shrink(&value) {
            steps += 1;
            if let CaseOutcome::Failed(m) = run_case(prop, cand.clone()) {
                value = cand;
                msg = m;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_runs_clean() {
        check("commutative_add", 64, &(-100i64..=100, -100i64..=100), |(a, b)| {
            assert_eq!(a + b, b + a);
        });
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("all_below_50", 256, &(0i64..=1000,), |(v,)| {
                assert!(v < 50, "value {v} too large");
            });
        }));
        let msg = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("string panic payload"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("all_below_50"), "missing property name: {msg}");
        assert!(msg.contains("TESTKIT_SEED="), "missing seed report: {msg}");
        // The shrinker must land on the boundary counterexample.
        assert!(msg.contains("(50,)"), "not minimal: {msg}");
    }

    #[test]
    fn assume_discards_instead_of_failing() {
        check("assume_filters", 32, &(-10i64..=10,), |(v,)| {
            crate::tk_assume!(v != 0);
            assert_ne!(v, 0);
        });
    }

    #[test]
    fn runaway_discards_are_detected() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("assume_everything_away", 4, &(0i64..=10,), |(_v,)| {
                crate::tk_assume!(false);
            });
        }));
        assert!(result.is_err(), "all-discarding property must abort");
    }

    #[test]
    fn vec_counterexamples_shrink_structurally() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "no_vec_sums_above_100",
                256,
                &(gen::vec(0i64..=60, 0..8),),
                |(v,)| {
                    let s: i64 = v.iter().sum();
                    assert!(s <= 100, "sum {s}");
                },
            );
        }));
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        // A minimal failing vector for sum > 100 has at most 2 elements
        // ([60, x]); the shrinker should get at least close to that.
        let open = msg.find('[').expect("vector debug in message");
        let close = msg[open..].find(']').unwrap() + open;
        let elems = msg[open + 1..close].split(',').count();
        assert!(elems <= 3, "poorly shrunk counterexample: {msg}");
    }

    #[test]
    fn seeds_are_stable_per_name() {
        if std::env::var("TESTKIT_SEED").is_ok() {
            return; // explicit override in play
        }
        assert_eq!(seed_for("x"), seed_for("x"));
        assert_ne!(seed_for("x"), seed_for("y"));
    }
}
