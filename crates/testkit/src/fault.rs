//! Deterministic fault injection for HTTP/1.1 services.
//!
//! A [`FaultPlan`] is a replayable sequence of [`FaultAction`]s drawn
//! from a seeded [`Rng`](crate::Rng): the same seed always produces the
//! same mix of healthy requests, slow-loris writes, mid-request
//! disconnects, injected worker panics, and injected search stalls.
//! Chaos tests replay a plan against a live daemon and assert the
//! service-level invariants (workers survive, sheds are well-formed,
//! drain stays bounded) — and a failure reproduces from the seed alone.
//!
//! The executor speaks just enough `Connection: close` HTTP/1.1 over a
//! raw [`TcpStream`] to exercise a server's read path from *outside*
//! its own client (the point is to send traffic a well-behaved client
//! never would). Panics and stalls ride the `X-Cfmapd-Fault` request
//! header, which `cfmapd` honors only when started with fault injection
//! enabled.

use crate::rng::Rng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One injected behavior for one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// A healthy request: write fully, read the full response.
    Normal,
    /// Slow-loris: dribble the request out in `chunk`-byte pieces with
    /// `delay_ms` sleeps between them, then read the response.
    SlowWrite {
        /// Bytes per write.
        chunk: usize,
        /// Sleep between writes, in milliseconds.
        delay_ms: u64,
    },
    /// Write only the first `keep_bytes` of the request, then drop the
    /// connection without reading anything.
    DisconnectMidRequest {
        /// How much of the request the server gets to see.
        keep_bytes: usize,
    },
    /// Write the full request, then drop the connection without
    /// reading the response (the server writes into a closing socket).
    DisconnectBeforeResponse,
    /// Ask the server to panic in the worker handling this request
    /// (`X-Cfmapd-Fault: panic`). The worker must answer 500 and live.
    WorkerPanic,
    /// Ask the server to stall this request's worker for `ms`
    /// milliseconds (`X-Cfmapd-Fault: stall-ms:N`), simulating a wedged
    /// search that occupies a pool slot.
    SearchStall {
        /// Stall length in milliseconds.
        ms: u64,
    },
}

impl FaultAction {
    /// Draw one action from a seeded generator. Weights favor healthy
    /// traffic (about half) so a plan still exercises the happy path.
    pub fn draw(rng: &mut Rng) -> FaultAction {
        match rng.u64_below(10) {
            0..=4 => FaultAction::Normal,
            5 => FaultAction::SlowWrite {
                chunk: rng.usize_in(1, 8),
                delay_ms: rng.i64_in(1, 10) as u64,
            },
            6 => FaultAction::DisconnectMidRequest { keep_bytes: rng.usize_in(0, 40) },
            7 => FaultAction::DisconnectBeforeResponse,
            8 => FaultAction::WorkerPanic,
            _ => FaultAction::SearchStall { ms: rng.i64_in(5, 60) as u64 },
        }
    }

    /// The `X-Cfmapd-Fault` header value this action rides on, if any.
    pub fn fault_header(&self) -> Option<String> {
        match self {
            FaultAction::WorkerPanic => Some("panic".to_string()),
            FaultAction::SearchStall { ms } => Some(format!("stall-ms:{ms}")),
            _ => None,
        }
    }
}

/// A replayable sequence of fault actions.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The seed the plan was drawn from (printed on failure).
    pub seed: u64,
    /// The actions, in replay order.
    pub actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// Draw `len` actions deterministically from `seed`.
    pub fn from_seed(seed: u64, len: usize) -> FaultPlan {
        let mut rng = Rng::new(seed);
        let actions = (0..len).map(|_| FaultAction::draw(&mut rng)).collect();
        FaultPlan { seed, actions }
    }
}

/// What came back from one replayed request.
#[derive(Clone, Debug, Default)]
pub struct FaultOutcome {
    /// Parsed status code, when a complete response status line arrived.
    pub status: Option<u16>,
    /// Response body (empty on disconnect actions).
    pub body: String,
    /// The `Retry-After` header in seconds, if present.
    pub retry_after: Option<u64>,
}

/// Replay one action as a `POST path` request against `addr`. Returns
/// `Err` only on unexpected transport failures — a disconnect *caused
/// by the action itself* is a success with `status: None`.
pub fn run_action(
    addr: &str,
    path: &str,
    body: &str,
    action: &FaultAction,
) -> std::io::Result<FaultOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let fault_line = action
        .fault_header()
        .map(|v| format!("X-Cfmapd-Fault: {v}\r\n"))
        .unwrap_or_default();
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n{fault_line}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let bytes = request.as_bytes();
    match action {
        FaultAction::DisconnectMidRequest { keep_bytes } => {
            let keep = (*keep_bytes).min(bytes.len().saturating_sub(1));
            stream.write_all(&bytes[..keep])?;
            return Ok(FaultOutcome::default()); // dropped here, by design
        }
        FaultAction::SlowWrite { chunk, delay_ms } => {
            for piece in bytes.chunks((*chunk).max(1)) {
                stream.write_all(piece)?;
                stream.flush()?;
                std::thread::sleep(Duration::from_millis(*delay_ms));
            }
        }
        _ => stream.write_all(bytes)?,
    }
    stream.flush()?;
    if matches!(action, FaultAction::DisconnectBeforeResponse) {
        return Ok(FaultOutcome::default()); // dropped before reading, by design
    }
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(parse_response(&String::from_utf8_lossy(&raw)))
}

/// Split an HTTP/1.1 response into status, `Retry-After`, and body.
fn parse_response(text: &str) -> FaultOutcome {
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return FaultOutcome { status: None, body: text.to_string(), retry_after: None };
    };
    let status = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok());
    let retry_after = head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("retry-after") {
            value.trim().parse().ok()
        } else {
            None
        }
    });
    FaultOutcome { status, body: body.to_string(), retry_after }
}

/// One disruption of a multi-process fleet, injected at a specific
/// point in a request burst.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetEvent {
    /// SIGKILL backend `backend` (no drain, no goodbye — connections
    /// die with RSTs and the router must notice passively).
    KillBackend {
        /// Index into the fleet's backend list.
        backend: usize,
    },
    /// Wedge backend `backend` by sending it a stalled request
    /// (`X-Cfmapd-Fault: stall-ms:N`) that pins one of its workers.
    StallBackend {
        /// Index into the fleet's backend list.
        backend: usize,
        /// Stall length in milliseconds.
        ms: u64,
    },
    /// Gracefully drain backend `backend` (`POST /shutdown`): it keeps
    /// answering in-flight work but reports `draining` on `/healthz`,
    /// so a router should steer new traffic away before the shed.
    DrainBackend {
        /// Index into the fleet's backend list.
        backend: usize,
    },
}

/// A seeded multi-process chaos scenario: a burst of `requests` mapping
/// calls with fleet disruptions injected at fixed burst offsets. Same
/// seed → byte-for-byte the same scenario, so a chaos failure
/// reproduces from the seed alone (the single-process analogue is
/// [`FaultPlan`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetPlan {
    /// The seed the plan was drawn from (printed on failure).
    pub seed: u64,
    /// Backends in the fleet.
    pub backends: usize,
    /// Total requests in the burst.
    pub requests: usize,
    /// `(after_request, event)` pairs, sorted by offset: the event
    /// fires once the burst has issued that many requests.
    pub events: Vec<(usize, FleetEvent)>,
}

impl FleetPlan {
    /// Draw a scenario deterministically from `seed`: one mid-burst
    /// kill (the headline disruption — always present, never in the
    /// first or last fifth of the burst so recovery is observable), and
    /// with seed-dependent probability a stall of a *different*
    /// backend before it.
    pub fn from_seed(seed: u64, backends: usize, requests: usize) -> FleetPlan {
        assert!(backends >= 2, "a fleet plan needs at least 2 backends");
        assert!(requests >= 10, "a burst shorter than 10 cannot place a mid-burst kill");
        let mut rng = Rng::new(seed);
        let victim = rng.usize_in(0, backends - 1);
        let kill_at = rng.usize_in(requests / 5, requests - requests / 5 - 1);
        let mut events = Vec::new();
        if rng.u64_below(2) == 0 {
            // A stall on a surviving backend, early in the burst.
            let mut stalled = rng.usize_in(0, backends - 1);
            if stalled == victim {
                stalled = (stalled + 1) % backends;
            }
            let stall_at = rng.usize_in(1, (requests / 5).max(2));
            events.push((
                stall_at,
                FleetEvent::StallBackend { backend: stalled, ms: rng.i64_in(20, 120) as u64 },
            ));
        }
        events.push((kill_at, FleetEvent::KillBackend { backend: victim }));
        events.sort_by_key(|(at, _)| *at);
        FleetPlan { seed, backends, requests, events }
    }

    /// The backend the plan kills (every plan kills exactly one).
    pub fn killed_backend(&self) -> usize {
        self.events
            .iter()
            .find_map(|(_, e)| match e {
                FleetEvent::KillBackend { backend } => Some(*backend),
                _ => None,
            })
            .expect("every fleet plan contains a kill")
    }

    /// The burst offset at which the kill fires.
    pub fn kill_offset(&self) -> usize {
        self.events
            .iter()
            .find_map(|(at, e)| matches!(e, FleetEvent::KillBackend { .. }).then_some(*at))
            .expect("every fleet plan contains a kill")
    }

    /// Events due at exactly `sent` requests into the burst.
    pub fn due_at(&self, sent: usize) -> impl Iterator<Item = &FleetEvent> {
        self.events.iter().filter(move |(at, _)| *at == sent).map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_plans_replay_identically_from_their_seed() {
        for seed in [1u64, 0xDEAD, 0xC0FFEE, 42] {
            let a = FleetPlan::from_seed(seed, 3, 60);
            let b = FleetPlan::from_seed(seed, 3, 60);
            assert_eq!(a, b, "seed {seed:#x} must replay byte-for-byte");
            assert!(a.killed_backend() < 3);
            let at = a.kill_offset();
            assert!((12..48).contains(&at), "kill at {at} outside the mid-burst window");
            // A stall, when present, targets a survivor.
            for (_, e) in &a.events {
                if let FleetEvent::StallBackend { backend, .. } = e {
                    assert_ne!(*backend, a.killed_backend(), "stall must hit a survivor");
                }
            }
        }
        assert_ne!(
            FleetPlan::from_seed(7, 3, 60),
            FleetPlan::from_seed(8, 3, 60),
            "different seeds should diverge"
        );
    }

    #[test]
    fn fleet_plan_due_at_yields_events_in_order() {
        let plan = FleetPlan::from_seed(0xFEED, 3, 100);
        let mut replayed = Vec::new();
        for sent in 0..=plan.requests {
            for e in plan.due_at(sent) {
                replayed.push(e.clone());
            }
        }
        assert_eq!(
            replayed,
            plan.events.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>(),
            "walking the burst must fire every event exactly once, in order"
        );
    }

    #[test]
    fn plans_replay_identically_from_their_seed() {
        let a = FaultPlan::from_seed(0xC0FFEE, 32);
        let b = FaultPlan::from_seed(0xC0FFEE, 32);
        assert_eq!(a.actions, b.actions);
        let c = FaultPlan::from_seed(0xC0FFEE + 1, 32);
        assert_ne!(a.actions, c.actions, "different seeds should diverge");
    }

    #[test]
    fn plans_mix_healthy_and_faulty_traffic() {
        let plan = FaultPlan::from_seed(7, 200);
        let healthy = plan.actions.iter().filter(|a| matches!(a, FaultAction::Normal)).count();
        assert!(healthy > 50, "healthy traffic should dominate: {healthy}/200");
        assert!(healthy < 200, "a 200-action plan should contain faults");
        assert!(
            plan.actions.iter().any(|a| a.fault_header().is_some()),
            "plans should include header-injected faults"
        );
    }

    #[test]
    fn responses_parse_status_and_retry_after() {
        let out = parse_response(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\nRetry-After: 1\r\n\r\n{}",
        );
        assert_eq!(out.status, Some(503));
        assert_eq!(out.retry_after, Some(1));
        assert_eq!(out.body, "{}");
        let none = parse_response("garbage with no header split");
        assert_eq!(none.status, None);
    }
}
