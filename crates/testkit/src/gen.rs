//! Generator combinators.
//!
//! A [`Gen`] produces random values and knows how to propose *smaller*
//! variants of a failing value (shrinking). Plain integer ranges
//! (`-3i64..=3`, `1i64..5`, `0usize..4`, i128 ranges) implement `Gen`
//! directly, so property signatures read like the proptest originals.

use crate::rng::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A value generator with shrink-on-failure support.
pub trait Gen {
    /// The generated value type. `Clone + Debug` so failures can be
    /// re-run during shrinking and printed in panic messages.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose simpler candidates for a failing value. Candidates are
    /// tried in order; the first that still fails becomes the new
    /// current value. An empty vector stops shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Shrink candidates for an integer: move toward zero (and toward the
/// range's in-range point closest to zero).
fn shrink_i128_within(v: i128, lo: i128, hi: i128) -> Vec<i128> {
    let anchor = if lo > 0 {
        lo
    } else if hi < 0 {
        hi
    } else {
        0
    };
    let mut out = Vec::new();
    if v != anchor {
        out.push(anchor);
        let half = anchor + (v - anchor) / 2;
        if half != v && half != anchor {
            out.push(half);
        }
        let step = v - (v - anchor).signum();
        if step != half && step != anchor {
            out.push(step);
        }
    }
    out
}

macro_rules! int_range_gens {
    ($($ty:ty),*) => {$(
        impl Gen for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut Rng) -> $ty {
                rng.i128_in(*self.start() as i128, *self.end() as i128) as $ty
            }
            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                shrink_i128_within(*value as i128, *self.start() as i128, *self.end() as i128)
                    .into_iter()
                    .map(|v| v as $ty)
                    .collect()
            }
        }

        impl Gen for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "empty generator range");
                rng.i128_in(self.start as i128, self.end as i128 - 1) as $ty
            }
            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                shrink_i128_within(*value as i128, self.start as i128, self.end as i128 - 1)
                    .into_iter()
                    .map(|v| v as $ty)
                    .collect()
            }
        }
    )*};
}

int_range_gens!(i64, i32, u32, u64, usize);

// i128 ranges need width-safe sampling (the cast chain above would
// truncate), so they get a dedicated implementation.
impl Gen for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut Rng) -> i128 {
        rng.i128_in(*self.start(), *self.end())
    }
    fn shrink(&self, value: &i128) -> Vec<i128> {
        shrink_i128_within(*value, *self.start(), *self.end())
    }
}

impl Gen for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut Rng) -> i128 {
        assert!(self.start < self.end, "empty generator range");
        rng.i128_in(self.start, self.end - 1)
    }
    fn shrink(&self, value: &i128) -> Vec<i128> {
        shrink_i128_within(*value, self.start, self.end - 1)
    }
}

/// The full `i128` range (proptest's `any::<i128>()`).
pub fn any_i128() -> RangeInclusive<i128> {
    i128::MIN..=i128::MAX
}

/// Fair boolean generator (proptest's `any::<bool>()`).
#[derive(Clone, Debug)]
pub struct Bools;

/// Fair boolean generator.
pub fn bools() -> Bools {
    Bools
}

impl Gen for Bools {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.bool()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Length specification for [`vec`]: a fixed size or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty length range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Vector generator: `len` elements drawn from `elem`.
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    elem: G,
    len: SizeRange,
}

/// Generate a `Vec` of values from `elem` with a fixed or ranged
/// length (proptest's `prop::collection::vec`).
pub fn vec<G: Gen>(elem: G, len: impl Into<SizeRange>) -> VecGen<G> {
    VecGen { elem, len: len.into() }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let n = rng.usize_in(self.len.min, self.len.max);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: drop elements while the minimum
        // length permits.
        if value.len() > self.len.min {
            let keep = self.len.min.max(value.len() / 2);
            if keep < value.len() {
                out.push(value[..keep].to_vec());
            }
            for i in (0..value.len()).rev() {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Then element-wise shrinks.
        for (i, v) in value.iter().enumerate() {
            for cand in self.elem.shrink(v) {
                let mut copy = value.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

/// Decimal digit-string generator mirroring the proptest regex
/// strategies used in the integer tests:
///
/// * `digit_string(1, 40)`       ≈ `"[0-9]{1,40}"`
/// * `nonzero_digit_string(61)`  ≈ `"[1-9][0-9]{0,60}"`
/// * `signed_digit_string(81)`   ≈ `"-?[1-9][0-9]{0,80}"`
#[derive(Clone, Debug)]
pub struct DigitString {
    min_len: usize,
    max_len: usize,
    leading_nonzero: bool,
    signed: bool,
}

/// Digit string of `min_len..=max_len` digits, leading zeros allowed.
pub fn digit_string(min_len: usize, max_len: usize) -> DigitString {
    assert!(min_len >= 1 && min_len <= max_len);
    DigitString { min_len, max_len, leading_nonzero: false, signed: false }
}

/// Digit string with a nonzero leading digit, total length `1..=max_len`.
pub fn nonzero_digit_string(max_len: usize) -> DigitString {
    assert!(max_len >= 1);
    DigitString { min_len: 1, max_len, leading_nonzero: true, signed: false }
}

/// Optionally negated digit string with a nonzero leading digit.
pub fn signed_digit_string(max_len: usize) -> DigitString {
    assert!(max_len >= 1);
    DigitString { min_len: 1, max_len, leading_nonzero: true, signed: true }
}

impl Gen for DigitString {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let n = rng.usize_in(self.min_len, self.max_len);
        let mut s = String::with_capacity(n + 1);
        if self.signed && rng.bool() {
            s.push('-');
        }
        for i in 0..n {
            let lo = if i == 0 && self.leading_nonzero { 1 } else { 0 };
            let d = rng.i64_in(lo, 9) as u8;
            s.push((b'0' + d) as char);
        }
        s
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let mut out = Vec::new();
        let (sign, digits) = match value.strip_prefix('-') {
            Some(rest) => ("-", rest),
            None => ("", value.as_str()),
        };
        if !sign.is_empty() {
            out.push(digits.to_string());
        }
        if digits.len() > self.min_len {
            out.push(format!("{sign}{}", &digits[..digits.len() / 2 + 1]));
            out.push(format!("{sign}{}", &digits[..digits.len() - 1]));
        }
        let lead = if self.leading_nonzero { '1' } else { '0' };
        if !digits.is_empty() && !digits.starts_with(lead) {
            out.push(format!("{sign}{lead}{}", &digits[1..]));
        }
        out.retain(|s| s != value && !s.is_empty() && s != "-");
        out
    }
}

/// Map a generator's output through a function. Shrinking re-maps the
/// shrunk *inputs*, so the underlying value is carried alongside.
#[derive(Clone, Debug)]
pub struct MapGen<G, F> {
    inner: G,
    f: F,
}

/// Transform generated values with `f` (proptest's `prop_map`). The
/// carried value is a `(input, output)` pair; use `.1` in the body or
/// destructure.
pub fn map<G: Gen, T: Clone + Debug, F: Fn(&G::Value) -> T>(inner: G, f: F) -> MapGen<G, F> {
    MapGen { inner, f }
}

impl<G: Gen, T: Clone + Debug, F: Fn(&G::Value) -> T> Gen for MapGen<G, F> {
    type Value = (G::Value, T);

    fn generate(&self, rng: &mut Rng) -> (G::Value, T) {
        let input = self.inner.generate(rng);
        let output = (self.f)(&input);
        (input, output)
    }

    fn shrink(&self, value: &(G::Value, T)) -> Vec<(G::Value, T)> {
        self.inner
            .shrink(&value.0)
            .into_iter()
            .map(|input| {
                let output = (self.f)(&input);
                (input, output)
            })
            .collect()
    }
}

macro_rules! tuple_gens {
    ($(($($g:ident . $idx:tt),+))*) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_gens! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_gens_stay_in_range() {
        let mut rng = Rng::new(3);
        for _ in 0..500 {
            let v = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
            let w = (1i64..5).generate(&mut rng);
            assert!((1..5).contains(&w));
            let u = (0usize..4).generate(&mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn int_shrink_moves_toward_zero() {
        let g = -100i64..=100;
        for cand in g.shrink(&64) {
            assert!(cand.abs() < 64, "candidate {cand} is not smaller");
        }
        assert!(g.shrink(&0).is_empty());
        // Strictly positive range anchors at its low end.
        let pos = 5i64..=20;
        assert!(pos.shrink(&5).is_empty());
        assert!(pos.shrink(&17).contains(&5));
    }

    #[test]
    fn vec_gen_respects_length() {
        let mut rng = Rng::new(9);
        let g = vec(-3i64..=3, 1..4);
        for _ in 0..200 {
            let v = g.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
        let fixed = vec(-3i64..=3, 3);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }

    #[test]
    fn vec_shrink_shortens_and_simplifies() {
        let g = vec(-9i64..=9, 0..6);
        let shrinks = g.shrink(&std::vec![5, -7, 3]);
        assert!(shrinks.iter().any(|s| s.len() < 3));
        assert!(shrinks.iter().any(|s| s.len() == 3 && s != &std::vec![5, -7, 3]));
        // Fixed-length vectors only shrink element-wise.
        let fixed = vec(-9i64..=9, 2);
        for s in fixed.shrink(&std::vec![4, 4]) {
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn digit_strings_match_their_patterns() {
        let mut rng = Rng::new(5);
        for _ in 0..300 {
            let s = nonzero_digit_string(61).generate(&mut rng);
            assert!((1..=61).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_digit());
            assert_ne!(s.chars().next().unwrap(), '0');

            let s = signed_digit_string(81).generate(&mut rng);
            let body = s.strip_prefix('-').unwrap_or(&s);
            assert!(!body.starts_with('0') && !body.is_empty());

            let s = digit_string(1, 40).generate(&mut rng);
            assert!((1..=40).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn digit_string_shrinks_stay_valid() {
        let g = signed_digit_string(10);
        for cand in g.shrink(&"-987".to_string()) {
            let body = cand.strip_prefix('-').unwrap_or(&cand);
            assert!(!body.is_empty() && !body.starts_with('0'));
        }
    }

    #[test]
    fn tuple_gen_shrinks_componentwise() {
        let g = (-9i64..=9, bools());
        let shrinks = g.shrink(&(4, true));
        assert!(shrinks.contains(&(0, true)));
        assert!(shrinks.contains(&(4, false)));
    }

    #[test]
    fn map_gen_carries_input() {
        let mut rng = Rng::new(1);
        let g = map(vec(1i64..=9, 2), |v| v.iter().sum::<i64>());
        let (input, output) = g.generate(&mut rng);
        assert_eq!(output, input.iter().sum::<i64>());
        for (i, o) in g.shrink(&(input, output)) {
            assert_eq!(o, i.iter().sum::<i64>());
        }
    }
}
