//! # cfmap-testkit
//!
//! A minimal, zero-dependency property-testing harness for the cfmap
//! workspace. It exists so the build is *hermetic*: no registry crates,
//! no network, no build scripts — just `std`.
//!
//! The moving parts:
//!
//! * [`Rng`] — deterministic xorshift64* PRNG. Each property derives its
//!   seed from its own name (stable across runs); `TESTKIT_SEED=<u64>`
//!   overrides it for reproduction, `TESTKIT_CASES=<n>` overrides the
//!   case count.
//! * [`gen`] — generator combinators. Integer ranges (`-3i64..=3`,
//!   `1i64..5`) are generators themselves; [`gen::vec`], [`gen::bools`],
//!   digit-string generators and tuples (up to arity 9) cover the rest.
//! * [`check`] — the runner: draws values, catches assertion panics via
//!   `catch_unwind`, shrinks the failing input, and re-panics with the
//!   seed and the minimal counterexample.
//! * [`fault`] — a deterministic fault-injection harness for HTTP
//!   services: seeded [`fault::FaultPlan`]s replay slow-loris writes,
//!   mid-request disconnects, injected worker panics, and search stalls
//!   byte-for-byte identically from their seed.
//! * [`props!`] — declares `#[test]` properties with a proptest-like
//!   surface:
//!
//! ```
//! cfmap_testkit::props! {
//!     cases = 64;
//!
//!     fn addition_commutes(a in -100i64..=100, b in -100i64..=100) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Inside a property body, plain `assert!`/`assert_eq!` macros do the
//! work; [`tk_assume!`] discards a case that does not meet a
//! precondition (the analogue of `prop_assume!`).

#![forbid(unsafe_code)]

pub mod fault;
pub mod gen;
pub mod rng;
pub mod runner;

pub use gen::Gen;
pub use rng::Rng;
pub use runner::{cases_for, check, seed_for, Discard};

/// Discard the current case when a precondition fails (proptest's
/// `prop_assume!`). Discards do not count toward the case total; a
/// property that discards far more than it accepts aborts with a
/// diagnostic instead of looping forever.
#[macro_export]
macro_rules! tk_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::Discard);
        }
    };
}

/// Declare property tests.
///
/// ```text
/// props! {
///     cases = 48;                       // optional, defaults to 256
///
///     /// Doc comments and attributes pass through.
///     fn my_property(x in -3i64..=3, v in gen::vec(0i64..=9, 1..4)) {
///         assert!(x.abs() <= 3);
///         assert!(!v.is_empty());
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]` that runs `cases` random cases. The
/// bound variables are generated from the expressions after `in`
/// (anything implementing [`Gen`]); on failure the whole tuple of
/// inputs is shrunk and reported together with the seed.
#[macro_export]
macro_rules! props {
    (cases = $cases:expr; $($rest:tt)*) => {
        $crate::__props_inner! { ($cases) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__props_inner! { (256) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __props_inner {
    (($cases:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __gen = ($($gen,)+);
                $crate::check(stringify!($name), $cases, &__gen, |__value| {
                    #[allow(unused_parens)]
                    let ($($arg),+) = {
                        let ($($arg,)+) = __value;
                        ($($arg),+)
                    };
                    $body
                });
            }
        )*
    };
}

#[cfg(test)]
mod macro_tests {
    crate::props! {
        cases = 32;

        /// Attributes and doc comments are forwarded.
        fn single_binding(x in -5i64..=5) {
            assert!(x.abs() <= 5);
        }

        fn multiple_bindings(
            a in 0i64..=9,
            b in crate::gen::vec(0i64..=3, 2..5),
            c in crate::gen::bools(),
        ) {
            assert!((0..=9).contains(&a));
            assert!((2..=4).contains(&b.len()));
            let _ = c;
        }

        fn assume_works(x in -4i64..=4) {
            crate::tk_assume!(x != 0);
            assert_ne!(x, 0);
        }
    }

    crate::props! {
        fn default_case_count(x in 0i64..=1) {
            let _ = x;
        }
    }
}
