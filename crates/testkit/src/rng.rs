//! Deterministic xorshift64* PRNG.
//!
//! Not cryptographic — just a fast, dependency-free source of
//! well-mixed bits with a tiny state, good enough to drive property
//! tests. The generator is seeded explicitly so every failure is
//! reproducible from the seed printed in the panic message.

/// xorshift64* pseudo-random generator (Vigna, 2016).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. A zero seed is remapped to a
    /// fixed odd constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Rng {
        Rng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next raw 128-bit value (two draws).
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform draw in `[0, n)`. `n` must be nonzero. Uses rejection
    /// sampling, so the distribution is exactly uniform.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "u64_below(0)");
        let zone = n.wrapping_mul(u64::MAX / n);
        loop {
            let v = self.next_u64();
            if zone == 0 || v < zone {
                return v % n;
            }
        }
    }

    /// Uniform draw in `[0, n)` over 128 bits.
    pub fn u128_below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0, "u128_below(0)");
        let zone = n.wrapping_mul(u128::MAX / n);
        loop {
            let v = self.next_u128();
            if zone == 0 || v < zone {
                return v % n;
            }
        }
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "i64_in: empty range {lo}..={hi}");
        let width = (hi as u64).wrapping_sub(lo as u64);
        if width == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.u64_below(width + 1) as i64)
    }

    /// Uniform draw in the inclusive range `[lo, hi]` over 128 bits.
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi, "i128_in: empty range {lo}..={hi}");
        let width = (hi as u128).wrapping_sub(lo as u128);
        if width == u128::MAX {
            return self.next_u128() as i128;
        }
        lo.wrapping_add(self.u128_below(width + 1) as i128)
    }

    /// Uniform draw in the inclusive range `[lo, hi]` for `usize`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.i64_in(lo as i64, hi as i64) as usize
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::new(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.i64_in(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "endpoints never drawn");
        for _ in 0..100 {
            let v = r.i128_in(-(1i128 << 96), 1i128 << 96);
            assert!((-(1i128 << 96)..=(1i128 << 96)).contains(&v));
        }
    }

    #[test]
    fn full_width_ranges() {
        let mut r = Rng::new(11);
        let _ = r.i64_in(i64::MIN, i64::MAX);
        let _ = r.i128_in(i128::MIN, i128::MAX);
    }
}
