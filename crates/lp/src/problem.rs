//! LP / ILP problem construction.
//!
//! A problem is `min c·x` (or `max`) subject to linear constraints over
//! rational coefficients, with per-variable lower bounds (default: free).
//! The formulations of Section 5 of the paper build directly on this: the
//! objective is the weighted schedule length `Σ μ_i·π_i` (Equation 5.1) and
//! constraints come from `ΠD > 0`, the conflict-freedom disjuncts, and the
//! interconnection inequalities of Definition 2.2.

use cfmap_intlin::{Int, Rat};
use std::fmt;

/// The relation of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A linear expression `Σ coeffs[i]·x_i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinExpr {
    /// One rational coefficient per variable.
    pub coeffs: Vec<Rat>,
}

impl LinExpr {
    /// Zero expression over `n` variables.
    pub fn zeros(n: usize) -> LinExpr {
        LinExpr { coeffs: vec![Rat::zero(); n] }
    }

    /// From machine-integer coefficients.
    pub fn from_i64s(coeffs: &[i64]) -> LinExpr {
        LinExpr { coeffs: coeffs.iter().map(|&c| Rat::from_i64(c)).collect() }
    }

    /// From big-integer coefficients.
    pub fn from_ints(coeffs: &[Int]) -> LinExpr {
        LinExpr { coeffs: coeffs.iter().cloned().map(Rat::from_int).collect() }
    }

    /// A single variable `x_i` over `n` variables.
    pub fn var(n: usize, i: usize) -> LinExpr {
        let mut e = LinExpr::zeros(n);
        e.coeffs[i] = Rat::one();
        e
    }

    /// Evaluate at a point.
    pub fn eval(&self, x: &[Rat]) -> Rat {
        assert_eq!(self.coeffs.len(), x.len(), "eval: dimension mismatch");
        self.coeffs.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

/// A single linear constraint `expr ⟨rel⟩ rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: Rat,
}

impl Constraint {
    /// Build `coeffs · x  rel  rhs` from machine integers.
    pub fn new_i64(coeffs: &[i64], rel: Relation, rhs: i64) -> Constraint {
        Constraint { expr: LinExpr::from_i64s(coeffs), rel, rhs: Rat::from_i64(rhs) }
    }

    /// Build from big integers.
    pub fn new_int(coeffs: &[Int], rel: Relation, rhs: Int) -> Constraint {
        Constraint { expr: LinExpr::from_ints(coeffs), rel, rhs: Rat::from_int(rhs) }
    }

    /// `true` iff `x` satisfies the constraint.
    pub fn is_satisfied(&self, x: &[Rat]) -> bool {
        let lhs = self.expr.eval(x);
        match self.rel {
            Relation::Le => lhs <= self.rhs,
            Relation::Ge => lhs >= self.rhs,
            Relation::Eq => lhs == self.rhs,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.expr.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if first {
                write!(f, "{c}·x{i}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}·x{i}", c.abs())?;
            } else {
                write!(f, " + {c}·x{i}")?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        let rel = match self.rel {
            Relation::Le => "≤",
            Relation::Ge => "≥",
            Relation::Eq => "=",
        };
        write!(f, " {rel} {}", self.rhs)
    }
}

/// Optimization sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A linear program over `n_vars` variables.
///
/// Variables are **free** unless a lower bound is set; the simplex layer
/// splits free variables internally.
#[derive(Clone, Debug)]
pub struct LpProblem {
    /// Number of decision variables.
    pub n_vars: usize,
    /// Objective coefficients.
    pub objective: LinExpr,
    /// Sense (minimize by default).
    pub sense: Sense,
    /// Constraints.
    pub constraints: Vec<Constraint>,
    /// Optional per-variable lower bounds (`None` = free below).
    pub lower_bounds: Vec<Option<Rat>>,
    /// Optional per-variable upper bounds (`None` = free above).
    pub upper_bounds: Vec<Option<Rat>>,
}

impl LpProblem {
    /// A minimization problem with the given objective coefficients.
    pub fn minimize(objective: &[i64]) -> LpProblem {
        LpProblem {
            n_vars: objective.len(),
            objective: LinExpr::from_i64s(objective),
            sense: Sense::Minimize,
            constraints: Vec::new(),
            lower_bounds: vec![None; objective.len()],
            upper_bounds: vec![None; objective.len()],
        }
    }

    /// A minimization problem with big-integer objective coefficients.
    pub fn minimize_ints(objective: &[Int]) -> LpProblem {
        LpProblem {
            n_vars: objective.len(),
            objective: LinExpr::from_ints(objective),
            sense: Sense::Minimize,
            constraints: Vec::new(),
            lower_bounds: vec![None; objective.len()],
            upper_bounds: vec![None; objective.len()],
        }
    }

    /// Add a constraint (builder style).
    pub fn constrain(&mut self, c: Constraint) -> &mut Self {
        assert_eq!(c.expr.coeffs.len(), self.n_vars, "constraint arity mismatch");
        self.constraints.push(c);
        self
    }

    /// Add `coeffs·x rel rhs` from machine integers.
    pub fn constrain_i64(&mut self, coeffs: &[i64], rel: Relation, rhs: i64) -> &mut Self {
        self.constrain(Constraint::new_i64(coeffs, rel, rhs))
    }

    /// Set a lower bound on variable `i`.
    pub fn set_lower(&mut self, i: usize, bound: Rat) -> &mut Self {
        self.lower_bounds[i] = Some(bound);
        self
    }

    /// Set an upper bound on variable `i`.
    pub fn set_upper(&mut self, i: usize, bound: Rat) -> &mut Self {
        self.upper_bounds[i] = Some(bound);
        self
    }

    /// `true` iff `x` satisfies every constraint and bound.
    pub fn is_feasible(&self, x: &[Rat]) -> bool {
        if x.len() != self.n_vars {
            return false;
        }
        for (i, lb) in self.lower_bounds.iter().enumerate() {
            if let Some(lb) = lb {
                if &x[i] < lb {
                    return false;
                }
            }
        }
        for (i, ub) in self.upper_bounds.iter().enumerate() {
            if let Some(ub) = ub {
                if &x[i] > ub {
                    return false;
                }
            }
        }
        self.constraints.iter().all(|c| c.is_satisfied(x))
    }

    /// Objective value at `x`.
    pub fn objective_value(&self, x: &[Rat]) -> Rat {
        self.objective.eval(x)
    }
}

/// The outcome of an LP or ILP solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// The optimal point.
        x: Vec<Rat>,
        /// The optimal objective value.
        value: Rat,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

impl LpOutcome {
    /// The optimal value, if any.
    pub fn value(&self) -> Option<&Rat> {
        match self {
            LpOutcome::Optimal { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The optimal point, if any.
    pub fn point(&self) -> Option<&[Rat]> {
        match self {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval() {
        let e = LinExpr::from_i64s(&[1, -2, 3]);
        let x = vec![Rat::from_i64(4), Rat::from_i64(5), Rat::from_i64(6)];
        assert_eq!(e.eval(&x), Rat::from_i64(4 - 10 + 18));
        assert_eq!(LinExpr::var(3, 1).eval(&x), Rat::from_i64(5));
    }

    #[test]
    fn constraint_satisfaction() {
        let c = Constraint::new_i64(&[1, 1], Relation::Ge, 5);
        assert!(c.is_satisfied(&[Rat::from_i64(3), Rat::from_i64(2)]));
        assert!(!c.is_satisfied(&[Rat::from_i64(3), Rat::from_i64(1)]));
        let e = Constraint::new_i64(&[2, 0], Relation::Eq, 4);
        assert!(e.is_satisfied(&[Rat::from_i64(2), Rat::from_i64(99)]));
        assert!(!e.is_satisfied(&[Rat::from_i64(3), Rat::from_i64(0)]));
    }

    #[test]
    fn constraint_display() {
        let c = Constraint::new_i64(&[1, -2, 0], Relation::Le, 7);
        assert_eq!(c.to_string(), "1·x0 - 2·x1 ≤ 7");
        let z = Constraint::new_i64(&[0, 0], Relation::Ge, 0);
        assert_eq!(z.to_string(), "0 ≥ 0");
    }

    #[test]
    fn problem_feasibility() {
        let mut p = LpProblem::minimize(&[1, 1]);
        p.constrain_i64(&[1, 0], Relation::Ge, 1);
        p.constrain_i64(&[0, 1], Relation::Ge, 1);
        p.set_upper(0, Rat::from_i64(10));
        assert!(p.is_feasible(&[Rat::from_i64(1), Rat::from_i64(2)]));
        assert!(!p.is_feasible(&[Rat::from_i64(0), Rat::from_i64(2)]));
        assert!(!p.is_feasible(&[Rat::from_i64(11), Rat::from_i64(2)]));
        assert_eq!(
            p.objective_value(&[Rat::from_i64(1), Rat::from_i64(2)]),
            Rat::from_i64(3)
        );
    }
}
