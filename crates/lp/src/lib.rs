//! Exact rational linear and integer-linear programming.
//!
//! Section 5 of Shang & Fortes formulates the time-optimal conflict-free
//! mapping problem (Problem 2.2) as an integer programming problem
//! ((5.1)–(5.2) for `k = n−1`, (5.5)–(5.6) for `T ∈ Z^{3×5}`), and the
//! appendix solves the matrix-multiplication and transitive-closure
//! instances by *partitioning the non-convex solution set into convex
//! subsets* (one per disjunct of the conflict-freedom condition) *and
//! enumerating the integral extreme points of each*. This crate provides
//! exactly that toolbox, with no floating point anywhere:
//!
//! * [`problem`] — LP/ILP problem construction (constraints `≤`, `≥`, `=`,
//!   free or sign-constrained variables, bounds).
//! * [`simplex`] — two-phase primal simplex over [`cfmap_intlin::Rat`]
//!   with Bland's anti-cycling rule.
//! * [`ilp`] — branch & bound on top of the exact relaxation.
//! * [`vertex`] — extreme-point enumeration for small systems (the
//!   appendix technique: all extreme points are integral when the
//!   constraint coefficients are in {−1, 0, 1}).
//! * [`disjunction`] — "∃ i" constraint splitting: solve one convex
//!   subproblem per disjunct and keep the best optimum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disjunction;
pub mod ilp;
pub mod problem;
pub mod simplex;
pub mod vertex;

pub use disjunction::solve_disjunctive;
pub use ilp::{solve_ilp, solve_ilp_counted, NodeLimitExceeded};
pub use problem::{Constraint, LinExpr, LpOutcome, LpProblem, Relation};
pub use simplex::solve_lp;
pub use vertex::enumerate_vertices;
