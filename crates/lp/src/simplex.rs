//! Two-phase primal simplex over exact rationals.
//!
//! Bland's anti-cycling rule guarantees termination; every pivot is exact
//! [`Rat`] arithmetic, so the optima match the paper's appendix derivations
//! digit for digit (there is no tolerance anywhere). The instances the
//! paper produces are tiny (≤ 10 variables, ≤ 20 constraints), so the
//! dense-tableau method is entirely adequate.

use crate::problem::{LpOutcome, LpProblem, Relation, Sense};
use cfmap_intlin::Rat;

/// Solve a linear program exactly. Returns the optimum, `Infeasible`, or
/// `Unbounded`.
///
/// # Examples
///
/// ```
/// use cfmap_intlin::Rat;
/// use cfmap_lp::problem::{LpProblem, Relation};
/// use cfmap_lp::{solve_lp, LpOutcome};
///
/// // min x + y  s.t.  x ≥ 1, y ≥ 2.
/// let mut p = LpProblem::minimize(&[1, 1]);
/// p.constrain_i64(&[1, 0], Relation::Ge, 1);
/// p.constrain_i64(&[0, 1], Relation::Ge, 2);
/// let out = solve_lp(&p);
/// assert_eq!(out.value(), Some(&Rat::from_i64(3)));
/// ```
pub fn solve_lp(problem: &LpProblem) -> LpOutcome {
    Standardized::build(problem).solve()
}

/// How an original variable is represented in standard form.
#[derive(Clone, Debug)]
enum VarRepr {
    /// `x = y_pos − y_neg`, both ≥ 0 (free variable).
    Split { pos: usize, neg: usize },
    /// `x = y + shift`, `y ≥ 0` (lower-bounded variable).
    Shifted { idx: usize, shift: Rat },
}

/// A problem in standard form: `min c·y`, `A·y = b`, `y ≥ 0`, `b ≥ 0`.
struct Standardized {
    /// Rows of `A` with their right-hand sides.
    rows: Vec<(Vec<Rat>, Rat)>,
    /// Objective over standard variables (always a minimization).
    cost: Vec<Rat>,
    /// Number of structural (non-slack) standard variables.
    n_std: usize,
    /// Mapping back to original variables.
    reprs: Vec<VarRepr>,
    /// `true` if the original problem was a maximization (flip value back).
    maximized: bool,
}

impl Standardized {
    fn build(p: &LpProblem) -> Standardized {
        // 1. Represent each original variable by non-negative standard vars.
        let mut reprs = Vec::with_capacity(p.n_vars);
        let mut n_std = 0usize;
        for i in 0..p.n_vars {
            match &p.lower_bounds[i] {
                Some(lb) => {
                    reprs.push(VarRepr::Shifted { idx: n_std, shift: lb.clone() });
                    n_std += 1;
                }
                None => {
                    reprs.push(VarRepr::Split { pos: n_std, neg: n_std + 1 });
                    n_std += 2;
                }
            }
        }

        // 2. Rewrite every constraint (and upper bounds as constraints)
        //    over the standard variables.
        let mut ineqs: Vec<(Vec<Rat>, Relation, Rat)> = Vec::new();
        let mut push_expr = |coeffs: &[Rat], rel: Relation, rhs: &Rat, reprs: &[VarRepr]| {
            let mut row = vec![Rat::zero(); n_std];
            let mut rhs = rhs.clone();
            for (i, c) in coeffs.iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                match &reprs[i] {
                    VarRepr::Split { pos, neg } => {
                        row[*pos] = &row[*pos] + c;
                        row[*neg] = &row[*neg] - c;
                    }
                    VarRepr::Shifted { idx, shift } => {
                        row[*idx] = &row[*idx] + c;
                        rhs = &rhs - &(c * shift);
                    }
                }
            }
            ineqs.push((row, rel, rhs));
        };
        for c in &p.constraints {
            push_expr(&c.expr.coeffs, c.rel, &c.rhs, &reprs);
        }
        for (i, ub) in p.upper_bounds.iter().enumerate() {
            if let Some(ub) = ub {
                let mut coeffs = vec![Rat::zero(); p.n_vars];
                coeffs[i] = Rat::one();
                push_expr(&coeffs, Relation::Le, ub, &reprs);
            }
        }

        // 3. Slack/surplus variables turn inequalities into equalities.
        let n_slack = ineqs.iter().filter(|(_, rel, _)| *rel != Relation::Eq).count();
        let total = n_std + n_slack;
        let mut rows = Vec::with_capacity(ineqs.len());
        let mut slack_idx = n_std;
        for (mut row, rel, rhs) in ineqs {
            row.resize(total, Rat::zero());
            match rel {
                Relation::Le => {
                    row[slack_idx] = Rat::one();
                    slack_idx += 1;
                }
                Relation::Ge => {
                    row[slack_idx] = -Rat::one();
                    slack_idx += 1;
                }
                Relation::Eq => {}
            }
            rows.push((row, rhs));
        }
        // 4. Make every rhs non-negative.
        for (row, rhs) in &mut rows {
            if rhs.is_negative() {
                for c in row.iter_mut() {
                    *c = -c.clone();
                }
                *rhs = -rhs.clone();
            }
        }

        // 5. Objective over standard variables (minimization).
        let mut cost = vec![Rat::zero(); total];
        for (i, c) in p.objective.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let c = if p.sense == Sense::Maximize { -c.clone() } else { c.clone() };
            match &reprs[i] {
                VarRepr::Split { pos, neg } => {
                    cost[*pos] = &cost[*pos] + &c;
                    cost[*neg] = &cost[*neg] - &c;
                }
                VarRepr::Shifted { idx, .. } => {
                    cost[*idx] = &cost[*idx] + &c;
                    // Constant shift·c does not affect the argmin; the
                    // caller evaluates the true objective at the solution.
                }
            }
        }

        Standardized { rows, cost, n_std, reprs, maximized: p.sense == Sense::Maximize }
    }

    fn solve(self) -> LpOutcome {
        let m = self.rows.len();
        let n = self.cost.len();

        if m == 0 {
            // No constraints: optimum is 0 iff no negative cost direction.
            if self.cost.iter().any(|c| !c.is_zero()) {
                return LpOutcome::Unbounded;
            }
            let x = self.recover(&[], &[], n);
            return LpOutcome::Optimal { value: self.true_value(&x), x };
        }

        // Phase 1: artificial variables n..n+m, minimize their sum.
        let total = n + m;
        let mut tab: Vec<Vec<Rat>> = Vec::with_capacity(m);
        let mut basis: Vec<usize> = Vec::with_capacity(m);
        for (i, (row, rhs)) in self.rows.iter().enumerate() {
            let mut t = row.clone();
            t.resize(total, Rat::zero());
            t[n + i] = Rat::one();
            t.push(rhs.clone()); // rhs column at index `total`
            tab.push(t);
            basis.push(n + i);
        }
        let mut phase1_cost = vec![Rat::zero(); total];
        for cost in phase1_cost[n..].iter_mut() {
            *cost = Rat::one();
        }
        let mut obj = reduced_costs(&phase1_cost, &tab, &basis, total);
        if !run_simplex(&mut tab, &mut basis, &mut obj, total) {
            unreachable!("phase 1 cannot be unbounded: objective bounded below by 0");
        }
        // Infeasible iff some artificial is basic at a nonzero value.
        let art_sum: Rat = basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| b >= n)
            .map(|(i, _)| tab[i][total].clone())
            .sum();
        if !art_sum.is_zero() {
            return LpOutcome::Infeasible;
        }
        // Drive out artificials still basic at zero, or drop redundant rows.
        let mut drop_rows = Vec::new();
        for i in 0..m {
            if basis[i] < n {
                continue;
            }
            match (0..n).find(|&j| !tab[i][j].is_zero()) {
                Some(j) => pivot(&mut tab, &mut obj, &mut basis, i, j, total),
                None => drop_rows.push(i),
            }
        }
        for &i in drop_rows.iter().rev() {
            tab.remove(i);
            basis.remove(i);
        }
        // Remove artificial columns.
        for row in &mut tab {
            let rhs = row.remove(row.len() - 1);
            row.truncate(n);
            row.push(rhs);
        }

        // Phase 2.
        let mut obj = reduced_costs(&self.cost, &tab, &basis, n);
        if !run_simplex(&mut tab, &mut basis, &mut obj, n) {
            return LpOutcome::Unbounded;
        }
        let x = self.recover(&tab, &basis, n);
        LpOutcome::Optimal { value: self.true_value(&x), x }
    }

    /// Map a standard-form basic solution back to original variables.
    fn recover(&self, tab: &[Vec<Rat>], basis: &[usize], n: usize) -> Vec<Rat> {
        let mut std_vals = vec![Rat::zero(); n];
        for (i, &b) in basis.iter().enumerate() {
            if b < n {
                std_vals[b] = tab[i][tab[i].len() - 1].clone();
            }
        }
        let _ = self.n_std;
        self.reprs
            .iter()
            .map(|r| match r {
                VarRepr::Split { pos, neg } => &std_vals[*pos] - &std_vals[*neg],
                VarRepr::Shifted { idx, shift } => &std_vals[*idx] + shift,
            })
            .collect()
    }

    /// Evaluate the original objective (undoing the max→min flip).
    fn true_value(&self, x: &[Rat]) -> Rat {
        // `cost` was built over standard vars; recompute from the original
        // representation instead: Σ c_i x_i with the original sense.
        // The caller stored the flipped cost, so flip back if needed.
        let mut v = Rat::zero();
        for (i, repr) in self.reprs.iter().enumerate() {
            // Reconstruct the original coefficient from the standard cost.
            let c = match repr {
                VarRepr::Split { pos, .. } => self.cost[*pos].clone(),
                VarRepr::Shifted { idx, .. } => self.cost[*idx].clone(),
            };
            let c = if self.maximized { -c } else { c };
            v += &(&c * &x[i]);
        }
        v
    }
}

/// Reduced-cost row for the given basis: `c_j − c_B·B⁻¹·A_j`, with the
/// current objective value (negated) in the rhs slot.
fn reduced_costs(cost: &[Rat], tab: &[Vec<Rat>], basis: &[usize], width: usize) -> Vec<Rat> {
    let mut obj: Vec<Rat> = cost.to_vec();
    obj.push(Rat::zero());
    for (i, &b) in basis.iter().enumerate() {
        if cost[b].is_zero() {
            continue;
        }
        let f = cost[b].clone();
        for j in 0..=width {
            let idx = if j == width { tab[i].len() - 1 } else { j };
            let delta = &f * &tab[i][idx];
            let slot = if j == width { width } else { j };
            obj[slot] = &obj[slot] - &delta;
        }
    }
    obj
}

/// Run simplex iterations until optimal (`true`) or unbounded (`false`).
fn run_simplex(
    tab: &mut [Vec<Rat>],
    basis: &mut [usize],
    obj: &mut [Rat],
    width: usize,
) -> bool {
    loop {
        // Bland: entering variable = smallest index with negative reduced cost.
        let Some(enter) = (0..width).find(|&j| obj[j].is_negative()) else {
            return true; // optimal
        };
        // Ratio test with Bland tie-breaking (smallest basis index).
        let mut leave: Option<usize> = None;
        let mut best: Option<Rat> = None;
        for (i, row) in tab.iter().enumerate() {
            let a = &row[enter];
            if !a.is_positive() {
                continue;
            }
            let ratio = &row[row.len() - 1] / a;
            let better = match &best {
                None => true,
                Some(b) => {
                    ratio < *b || (ratio == *b && basis[i] < basis[leave.unwrap()])
                }
            };
            if better {
                best = Some(ratio);
                leave = Some(i);
            }
        }
        let Some(leave) = leave else {
            return false; // unbounded
        };
        pivot(tab, obj, basis, leave, enter, width);
    }
}

/// Pivot on `(row, col)`: normalize the pivot row and eliminate the column
/// from every other row and the objective row.
fn pivot(
    tab: &mut [Vec<Rat>],
    obj: &mut [Rat],
    basis: &mut [usize],
    row: usize,
    col: usize,
    width: usize,
) {
    let rhs_idx = tab[row].len() - 1;
    let pv = tab[row][col].clone();
    for j in 0..tab[row].len() {
        tab[row][j] = &tab[row][j] / &pv;
    }
    for i in 0..tab.len() {
        if i == row || tab[i][col].is_zero() {
            continue;
        }
        let f = tab[i][col].clone();
        for j in 0..tab[i].len() {
            let delta = &f * &tab[row][j];
            tab[i][j] = &tab[i][j] - &delta;
        }
    }
    if !obj[col].is_zero() {
        let f = obj[col].clone();
        for j in 0..width {
            let delta = &f * &tab[row][j];
            obj[j] = &obj[j] - &delta;
        }
        let delta = &f * &tab[row][rhs_idx];
        obj[width] = &obj[width] - &delta;
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation};
    use cfmap_intlin::Rat;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn simple_bounded_minimum() {
        // min x + y  s.t.  x ≥ 1, y ≥ 2  →  (1, 2), value 3.
        let mut p = LpProblem::minimize(&[1, 1]);
        p.constrain_i64(&[1, 0], Relation::Ge, 1);
        p.constrain_i64(&[0, 1], Relation::Ge, 2);
        let out = solve_lp(&p);
        assert_eq!(out, LpOutcome::Optimal { x: vec![r(1), r(2)], value: r(3) });
    }

    #[test]
    fn classic_max_as_min() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0 → (2, 6), 36.
        let mut p = LpProblem::minimize(&[-3, -5]);
        p.set_lower(0, Rat::zero());
        p.set_lower(1, Rat::zero());
        p.constrain_i64(&[1, 0], Relation::Le, 4);
        p.constrain_i64(&[0, 2], Relation::Le, 12);
        p.constrain_i64(&[3, 2], Relation::Le, 18);
        let out = solve_lp(&p);
        assert_eq!(out, LpOutcome::Optimal { x: vec![r(2), r(6)], value: r(-36) });
    }

    #[test]
    fn fractional_optimum() {
        // min x s.t. 2x ≥ 3 → x = 3/2.
        let mut p = LpProblem::minimize(&[1]);
        p.constrain_i64(&[2], Relation::Ge, 3);
        let out = solve_lp(&p);
        assert_eq!(
            out,
            LpOutcome::Optimal { x: vec!["3/2".parse().unwrap()], value: "3/2".parse().unwrap() }
        );
    }

    #[test]
    fn infeasible() {
        let mut p = LpProblem::minimize(&[1]);
        p.constrain_i64(&[1], Relation::Ge, 5);
        p.constrain_i64(&[1], Relation::Le, 3);
        assert_eq!(solve_lp(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded() {
        // min x with x free, no constraints.
        let p = LpProblem::minimize(&[1]);
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
        // min -x with x ≥ 0 only.
        let mut p = LpProblem::minimize(&[-1]);
        p.set_lower(0, Rat::zero());
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x − y = 2 → (6, 4).
        let mut p = LpProblem::minimize(&[1, 1]);
        p.constrain_i64(&[1, 1], Relation::Eq, 10);
        p.constrain_i64(&[1, -1], Relation::Eq, 2);
        let out = solve_lp(&p);
        assert_eq!(out, LpOutcome::Optimal { x: vec![r(6), r(4)], value: r(10) });
    }

    #[test]
    fn free_variables_can_go_negative() {
        // min x s.t. x ≥ −7 encoded as a constraint on a free variable.
        let mut p = LpProblem::minimize(&[1]);
        p.constrain_i64(&[1], Relation::Ge, -7);
        let out = solve_lp(&p);
        assert_eq!(out, LpOutcome::Optimal { x: vec![r(-7)], value: r(-7) });
    }

    #[test]
    fn upper_bounds_respected() {
        let mut p = LpProblem::minimize(&[-1]);
        p.set_lower(0, Rat::zero());
        p.set_upper(0, r(9));
        let out = solve_lp(&p);
        assert_eq!(out, LpOutcome::Optimal { x: vec![r(9)], value: r(-9) });
    }

    #[test]
    fn redundant_rows_are_dropped() {
        // Duplicate equality rows force phase-1 zero-artificial handling.
        let mut p = LpProblem::minimize(&[1, 1]);
        p.constrain_i64(&[1, 1], Relation::Eq, 4);
        p.constrain_i64(&[2, 2], Relation::Eq, 8);
        p.set_lower(0, Rat::zero());
        p.set_lower(1, Rat::zero());
        let out = solve_lp(&p);
        assert_eq!(out.value(), Some(&r(4)));
    }

    #[test]
    fn degenerate_cycling_guard() {
        // The classic Beale cycling example (terminates under Bland).
        // min -3/4·x4 + 150·x5 - 1/50·x6 + 6·x7
        // s.t. 1/4·x4 - 60·x5 - 1/25·x6 + 9·x7 ≤ 0
        //      1/2·x4 - 90·x5 - 1/50·x6 + 3·x7 ≤ 0
        //      x6 ≤ 1, all ≥ 0.
        let mut p = LpProblem::minimize(&[0, 0, 0, 0]);
        p.objective.coeffs = vec![
            "-3/4".parse().unwrap(),
            r(150),
            "-1/50".parse().unwrap(),
            r(6),
        ];
        for i in 0..4 {
            p.set_lower(i, Rat::zero());
        }
        p.constrain(crate::problem::Constraint {
            expr: crate::problem::LinExpr {
                coeffs: vec!["1/4".parse().unwrap(), r(-60), "-1/25".parse().unwrap(), r(9)],
            },
            rel: Relation::Le,
            rhs: Rat::zero(),
        });
        p.constrain(crate::problem::Constraint {
            expr: crate::problem::LinExpr {
                coeffs: vec!["1/2".parse().unwrap(), r(-90), "-1/50".parse().unwrap(), r(3)],
            },
            rel: Relation::Le,
            rhs: Rat::zero(),
        });
        p.constrain_i64(&[0, 0, 1, 0], Relation::Le, 1);
        let out = solve_lp(&p);
        assert_eq!(out.value(), Some(&"-1/20".parse().unwrap()));
    }

    #[test]
    fn matmul_convex_subset_i() {
        // Appendix Formulation I for Example 5.1, μ = 4:
        // min 4(π1+π2+π3) s.t. πi ≥ 1, π2+π3 ≥ μ+1 = 5.
        // Optimal value 4·(1+5) = 24 at e.g. (1, 1, 4) / (1, 4, 1).
        let mut p = LpProblem::minimize(&[4, 4, 4]);
        for i in 0..3 {
            p.set_lower(i, r(1));
        }
        p.constrain_i64(&[0, 1, 1], Relation::Ge, 5);
        let out = solve_lp(&p);
        assert_eq!(out.value(), Some(&r(24)));
        let x = out.point().unwrap();
        // Vertex of the region: π1 = 1, π2 + π3 = 5.
        assert_eq!(x[0], r(1));
        assert_eq!(&x[1] + &x[2], r(5));
    }

    #[test]
    fn transitive_closure_subset_ii() {
        // Appendix Formulation II for Example 5.2, μ = 4:
        // min 4(π1+π2+π3) s.t. π2,π3 ≥ 1, π1−π2−π3 ≥ 1, π1−π2 ≥ 1,
        // π1−π3 ≥ 1, π1 ≥ μ+1 = 5. Optimal: Π = (5, 1, 1), f = 28.
        let mut p = LpProblem::minimize(&[4, 4, 4]);
        p.constrain_i64(&[0, 1, 0], Relation::Ge, 1);
        p.constrain_i64(&[0, 0, 1], Relation::Ge, 1);
        p.constrain_i64(&[1, -1, -1], Relation::Ge, 1);
        p.constrain_i64(&[1, -1, 0], Relation::Ge, 1);
        p.constrain_i64(&[1, 0, -1], Relation::Ge, 1);
        p.constrain_i64(&[1, 0, 0], Relation::Ge, 5);
        let out = solve_lp(&p);
        assert_eq!(out, LpOutcome::Optimal { x: vec![r(5), r(1), r(1)], value: r(28) });
    }
}
