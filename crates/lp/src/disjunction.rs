//! Disjunctive decomposition of non-convex feasible sets.
//!
//! Constraint 3 of formulation (5.2) in the paper is an existential
//! disjunction — `∃ i: |f_i(π)| > μ_i` — so the feasible set is a union of
//! convex pieces, not a convex set. The appendix handles this by
//! *"partition[ing] the solution set as three convex subsets"*, solving
//! each, and taking the best optimum. [`solve_disjunctive`] is that
//! technique: a base problem plus a list of disjuncts (each a conjunction
//! of extra constraints); one ILP per disjunct; best wins.

use crate::ilp::{solve_ilp, NodeLimitExceeded};
use crate::problem::{Constraint, LpOutcome, LpProblem, Sense};

/// A named disjunct: a conjunction of constraints to add to the base
/// problem, with a human-readable label for experiment reporting.
#[derive(Clone, Debug)]
pub struct Disjunct {
    /// Label, e.g. `"π2 + π3 ≥ μ+1"`.
    pub label: String,
    /// Constraints of this branch.
    pub constraints: Vec<Constraint>,
}

impl Disjunct {
    /// Build a disjunct.
    pub fn new(label: impl Into<String>, constraints: Vec<Constraint>) -> Disjunct {
        Disjunct { label: label.into(), constraints }
    }
}

/// The outcome of a disjunctive solve: the best branch, if any is feasible.
#[derive(Clone, Debug)]
pub struct DisjunctiveOutcome {
    /// The overall outcome (best across branches).
    pub outcome: LpOutcome,
    /// Index of the winning disjunct (when `outcome` is optimal).
    pub winning_disjunct: Option<usize>,
    /// Per-branch outcomes, for experiment reporting.
    pub branches: Vec<LpOutcome>,
}

/// Solve `min/max objective` over the **union** of the feasible sets
/// `base ∧ disjunct_i`, each branch as an exact ILP.
///
/// Errs with [`NodeLimitExceeded`] when any branch exhausts its node
/// budget — a partial answer over the other branches could silently miss
/// the true optimum.
pub fn solve_disjunctive(
    base: &LpProblem,
    disjuncts: &[Disjunct],
    max_nodes_per_branch: usize,
) -> Result<DisjunctiveOutcome, NodeLimitExceeded> {
    let mut branches = Vec::with_capacity(disjuncts.len());
    let mut best: Option<(usize, LpOutcome)> = None;
    for (i, d) in disjuncts.iter().enumerate() {
        let mut p = base.clone();
        for c in &d.constraints {
            p.constrain(c.clone());
        }
        let out = solve_ilp(&p, max_nodes_per_branch)?;
        if let LpOutcome::Optimal { ref value, .. } = out {
            let better = match &best {
                None => true,
                Some((_, LpOutcome::Optimal { value: bv, .. })) => match base.sense {
                    Sense::Minimize => value < bv,
                    Sense::Maximize => value > bv,
                },
                _ => true,
            };
            if better {
                best = Some((i, out.clone()));
            }
        }
        branches.push(out);
    }
    Ok(match best {
        Some((i, out)) => DisjunctiveOutcome {
            outcome: out,
            winning_disjunct: Some(i),
            branches,
        },
        None => DisjunctiveOutcome {
            outcome: LpOutcome::Infeasible,
            winning_disjunct: None,
            branches,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation};
    use cfmap_intlin::Rat;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn matmul_example_5_1_full_decomposition() {
        // Example 5.1, μ = 4: min μ(π1+π2+π3), π_i ≥ 1, and
        //   (I)  π2 + π3 ≥ μ+1
        //   (II) π1 + π3 ≥ μ+1
        //   (III)|π1 − π2| ≥ μ+1 (itself split into two branches).
        // Paper: optimal value 24 at Π = [1,4,1] or [μ,1,1]; branch III
        // gives the worse extreme points [1, μ+2, 1], [μ+2, 1, 1].
        let mu = 4;
        let mut base = LpProblem::minimize(&[mu, mu, mu]);
        for i in 0..3 {
            base.set_lower(i, r(1));
            base.set_upper(i, r(2 * mu + 4));
        }
        let disjuncts = vec![
            Disjunct::new("π2+π3 ≥ μ+1", vec![Constraint::new_i64(&[0, 1, 1], Relation::Ge, mu + 1)]),
            Disjunct::new("π1+π3 ≥ μ+1", vec![Constraint::new_i64(&[1, 0, 1], Relation::Ge, mu + 1)]),
            Disjunct::new("π1−π2 ≥ μ+1", vec![Constraint::new_i64(&[1, -1, 0], Relation::Ge, mu + 1)]),
            Disjunct::new("π2−π1 ≥ μ+1", vec![Constraint::new_i64(&[-1, 1, 0], Relation::Ge, mu + 1)]),
        ];
        let result = solve_disjunctive(&base, &disjuncts, 10_000).unwrap();
        let LpOutcome::Optimal { value, x } = &result.outcome else {
            panic!("expected optimum");
        };
        assert_eq!(value, &r(24));
        // Winner is branch I or II (both achieve 24).
        assert!(matches!(result.winning_disjunct, Some(0) | Some(1)));
        assert!(x.iter().all(Rat::is_integer));
        // Branch III extreme points cost μ(μ+4) = 32 > 24.
        let LpOutcome::Optimal { value: v3, .. } = &result.branches[2] else {
            panic!("branch III should be feasible");
        };
        assert_eq!(v3, &r(mu * (mu + 4)));
    }

    #[test]
    fn all_branches_infeasible() {
        let base = LpProblem::minimize(&[1]);
        let disjuncts = vec![
            Disjunct::new("x ≥ 5 ∧ x ≤ 3", vec![
                Constraint::new_i64(&[1], Relation::Ge, 5),
                Constraint::new_i64(&[1], Relation::Le, 3),
            ]),
        ];
        let result = solve_disjunctive(&base, &disjuncts, 100).unwrap();
        assert_eq!(result.outcome, LpOutcome::Infeasible);
        assert_eq!(result.winning_disjunct, None);
    }

    #[test]
    fn ties_keep_first_branch() {
        let mut base = LpProblem::minimize(&[1]);
        base.set_lower(0, r(0));
        base.set_upper(0, r(10));
        let disjuncts = vec![
            Disjunct::new("x ≥ 2", vec![Constraint::new_i64(&[1], Relation::Ge, 2)]),
            Disjunct::new("x ≥ 2 too", vec![Constraint::new_i64(&[1], Relation::Ge, 2)]),
        ];
        let result = solve_disjunctive(&base, &disjuncts, 100).unwrap();
        assert_eq!(result.winning_disjunct, Some(0));
        assert_eq!(result.outcome.value(), Some(&r(2)));
    }
}
