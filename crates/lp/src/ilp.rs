//! Branch-and-bound integer linear programming over the exact simplex.
//!
//! The paper (Section 5) notes that the general integer programming problem
//! is NP-complete but that for each fixed dimension `n` a polynomial
//! algorithm exists, and that in practice the instances are tiny. We use
//! classic branch & bound: solve the exact LP relaxation, pick the first
//! fractional coordinate, branch on `x_i ≤ ⌊v⌋` and `x_i ≥ ⌈v⌉`, and prune
//! by bound. All arithmetic is exact, so "integral" is a precise test
//! (`denominator == 1`), not a tolerance.

use crate::problem::{Constraint, LinExpr, LpOutcome, LpProblem, Relation, Sense};
use crate::simplex::solve_lp;
use cfmap_intlin::Rat;
use std::fmt;

/// Branch & bound gave up: the node budget was exhausted before the search
/// tree was fully explored. Nothing can be certified — there may or may
/// not be an integral optimum beyond the horizon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeLimitExceeded {
    /// Nodes expanded before giving up (equals the configured limit).
    pub nodes: usize,
}

impl fmt::Display for NodeLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ILP branch-and-bound exceeded {} nodes; raise the node budget or add box bounds",
            self.nodes
        )
    }
}

impl std::error::Error for NodeLimitExceeded {}

/// Solve `problem` with **all** variables required to be integral.
///
/// Termination requires the feasible region (or at least the optimal face)
/// to be bounded in the branching directions; the mapping formulations
/// produced by `cfmap-core` always carry explicit box bounds derived from
/// Theorem 2.1, so this holds. `max_nodes` guards against runaway trees:
/// exceeding it returns [`NodeLimitExceeded`] instead of looping forever.
pub fn solve_ilp(problem: &LpProblem, max_nodes: usize) -> Result<LpOutcome, NodeLimitExceeded> {
    solve_ilp_counted(problem, max_nodes).map(|(out, _)| out)
}

/// [`solve_ilp`], also reporting the number of branch-and-bound nodes
/// expanded — the currency a caller's search budget is charged in.
pub fn solve_ilp_counted(
    problem: &LpProblem,
    max_nodes: usize,
) -> Result<(LpOutcome, usize), NodeLimitExceeded> {
    let mut best: Option<(Vec<Rat>, Rat)> = None;
    let mut stack: Vec<LpProblem> = vec![problem.clone()];
    let mut nodes = 0usize;

    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > max_nodes {
            return Err(NodeLimitExceeded { nodes: max_nodes });
        }
        match solve_lp(&node) {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // An unbounded relaxation at the root means the ILP is
                // unbounded or needs bounds; deeper nodes inherit it.
                return Ok((LpOutcome::Unbounded, nodes));
            }
            LpOutcome::Optimal { x, value } => {
                // Prune by bound.
                if let Some((_, ref best_v)) = best {
                    let worse = match problem.sense {
                        Sense::Minimize => &value >= best_v,
                        Sense::Maximize => &value <= best_v,
                    };
                    if worse {
                        continue;
                    }
                }
                match x.iter().position(|v| !v.is_integer()) {
                    None => {
                        let better = match &best {
                            None => true,
                            Some((_, bv)) => match problem.sense {
                                Sense::Minimize => &value < bv,
                                Sense::Maximize => &value > bv,
                            },
                        };
                        if better {
                            best = Some((x, value));
                        }
                    }
                    Some(i) => {
                        let v = &x[i];
                        let mut left = node.clone();
                        left.constrain(Constraint {
                            expr: LinExpr::var(node.n_vars, i),
                            rel: Relation::Le,
                            rhs: Rat::from_int(v.floor()),
                        });
                        let mut right = node.clone();
                        right.constrain(Constraint {
                            expr: LinExpr::var(node.n_vars, i),
                            rel: Relation::Ge,
                            rhs: Rat::from_int(v.ceil()),
                        });
                        stack.push(left);
                        stack.push(right);
                    }
                }
            }
        }
    }

    let outcome = match best {
        Some((x, value)) => LpOutcome::Optimal { x, value },
        None => LpOutcome::Infeasible,
    };
    Ok((outcome, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation};
    use cfmap_intlin::Rat;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn lp_relaxation_already_integral() {
        let mut p = LpProblem::minimize(&[1, 1]);
        p.constrain_i64(&[1, 0], Relation::Ge, 1);
        p.constrain_i64(&[0, 1], Relation::Ge, 2);
        let out = solve_ilp(&p, 100).unwrap();
        assert_eq!(out, LpOutcome::Optimal { x: vec![r(1), r(2)], value: r(3) });
    }

    #[test]
    fn fractional_relaxation_rounds_up() {
        // min x s.t. 2x ≥ 3, x integer → x = 2.
        let mut p = LpProblem::minimize(&[1]);
        p.constrain_i64(&[2], Relation::Ge, 3);
        p.set_upper(0, r(100));
        let out = solve_ilp(&p, 1000).unwrap();
        assert_eq!(out, LpOutcome::Optimal { x: vec![r(2)], value: r(2) });
    }

    #[test]
    fn knapsack_style() {
        // max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6, x,y ≥ 0 integer.
        // LP optimum is fractional; the ILP optimum is (4, 0) → 20.
        let mut p = LpProblem::minimize(&[-5, -4]);
        p.set_lower(0, Rat::zero());
        p.set_lower(1, Rat::zero());
        p.constrain_i64(&[6, 4], Relation::Le, 24);
        p.constrain_i64(&[1, 2], Relation::Le, 6);
        let out = solve_ilp(&p, 1000).unwrap();
        assert_eq!(out.value(), Some(&r(-20)));
        let x = out.point().unwrap();
        assert!(x.iter().all(Rat::is_integer));
    }

    #[test]
    fn infeasible_integer_gap() {
        // 2 ≤ 2x ≤ 3 has the rational solution x ∈ [1, 3/2]; with x ≥ 1.2
        // it has no integer point: 6 ≤ 5x ≤ 7.
        let mut p = LpProblem::minimize(&[1]);
        p.constrain_i64(&[5], Relation::Ge, 6);
        p.constrain_i64(&[5], Relation::Le, 7);
        assert_eq!(solve_ilp(&p, 1000), Ok(LpOutcome::Infeasible));
    }

    #[test]
    fn matmul_formulation_i_integer_optimum() {
        // Appendix Formulation I with μ = 4: optimum 24 at (1,1,4) or (1,4,1).
        let mut p = LpProblem::minimize(&[4, 4, 4]);
        for i in 0..3 {
            p.set_lower(i, r(1));
            p.set_upper(i, r(10));
        }
        p.constrain_i64(&[0, 1, 1], Relation::Ge, 5);
        let out = solve_ilp(&p, 10_000).unwrap();
        assert_eq!(out.value(), Some(&r(24)));
    }

    #[test]
    fn node_budget_enforced() {
        // An (intentionally) unbounded-in-branching direction problem with a
        // fractional face: x + y = 1/2 with x,y free integers has no
        // solution, and without bounds B&B would wander; the node budget
        // must fire — as an error, not a panic or a hang.
        let mut p = LpProblem::minimize(&[0, 0]);
        p.constrain(Constraint {
            expr: LinExpr::from_i64s(&[2, 2]),
            rel: Relation::Eq,
            rhs: r(1),
        });
        let err = solve_ilp(&p, 5).unwrap_err();
        assert_eq!(err, NodeLimitExceeded { nodes: 5 });
        assert!(err.to_string().contains("exceeded 5 nodes"));
    }

    #[test]
    fn counted_solve_reports_nodes() {
        let mut p = LpProblem::minimize(&[1]);
        p.constrain_i64(&[2], Relation::Ge, 3);
        p.set_upper(0, r(100));
        let (out, nodes) = solve_ilp_counted(&p, 1000).unwrap();
        assert_eq!(out.value(), Some(&r(2)));
        assert!((1..=1000).contains(&nodes));
    }
}
