//! Extreme-point enumeration for small polyhedra.
//!
//! The appendix of the paper solves the matrix-multiplication and
//! transitive-closure instances by hand: *"Each extreme point is the
//! solution of three of the following four equations …"*. This module
//! mechanizes exactly that: choose `n` constraints, solve the `n×n` linear
//! system exactly, keep the solutions that satisfy every constraint. The
//! paper's observation that all extreme points are integral when the
//! coefficients are in {−1, 0, 1} is then checkable (and checked in tests),
//! which is what licenses replacing the integer program by linear programs.

use crate::problem::LpProblem;
use cfmap_intlin::Rat;

/// Enumerate all vertices (basic feasible solutions) of the constraint set
/// of `problem` (bounds included). Intended for small systems — the cost is
/// `C(m, n)` exact solves.
///
/// Returns deduplicated vertices in no particular order.
pub fn enumerate_vertices(problem: &LpProblem) -> Vec<Vec<Rat>> {
    let n = problem.n_vars;
    // Gather all constraints as (coeffs, rhs) hyperplanes.
    let mut planes: Vec<(Vec<Rat>, Rat)> = Vec::new();
    for c in &problem.constraints {
        planes.push((c.expr.coeffs.clone(), c.rhs.clone()));
    }
    for (i, lb) in problem.lower_bounds.iter().enumerate() {
        if let Some(lb) = lb {
            let mut coeffs = vec![Rat::zero(); n];
            coeffs[i] = Rat::one();
            planes.push((coeffs, lb.clone()));
        }
    }
    for (i, ub) in problem.upper_bounds.iter().enumerate() {
        if let Some(ub) = ub {
            let mut coeffs = vec![Rat::zero(); n];
            coeffs[i] = Rat::one();
            planes.push((coeffs, ub.clone()));
        }
    }

    let m = planes.len();
    let mut vertices: Vec<Vec<Rat>> = Vec::new();
    let mut choice: Vec<usize> = Vec::with_capacity(n);
    combinations(m, n, &mut choice, &mut |subset| {
        if let Some(x) = solve_square(&planes, subset) {
            if problem.is_feasible(&x) && !vertices.contains(&x) {
                vertices.push(x);
            }
        }
    });
    vertices
}

/// The vertex minimizing the objective, with its value (ties broken by
/// first found). `None` if there are no vertices.
pub fn best_vertex(problem: &LpProblem) -> Option<(Vec<Rat>, Rat)> {
    let verts = enumerate_vertices(problem);
    let mut best: Option<(Vec<Rat>, Rat)> = None;
    for v in verts {
        let val = problem.objective_value(&v);
        let better = match (&best, problem.sense) {
            (None, _) => true,
            (Some((_, bv)), crate::problem::Sense::Minimize) => &val < bv,
            (Some((_, bv)), crate::problem::Sense::Maximize) => &val > bv,
        };
        if better {
            best = Some((v, val));
        }
    }
    best
}

fn combinations(m: usize, k: usize, choice: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    fn rec(start: usize, m: usize, k: usize, choice: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if choice.len() == k {
            f(choice);
            return;
        }
        let need = k - choice.len();
        for i in start..=m.saturating_sub(need) {
            choice.push(i);
            rec(i + 1, m, k, choice, f);
            choice.pop();
        }
    }
    if k <= m {
        rec(0, m, k, choice, f);
    }
}

/// Solve the square system formed by the chosen hyperplanes; `None` if
/// singular.
fn solve_square(planes: &[(Vec<Rat>, Rat)], subset: &[usize]) -> Option<Vec<Rat>> {
    let n = subset.len();
    let mut a: Vec<Vec<Rat>> = subset
        .iter()
        .map(|&i| {
            let mut row = planes[i].0.clone();
            row.push(planes[i].1.clone());
            row
        })
        .collect();
    // Gauss–Jordan with exact pivoting.
    for col in 0..n {
        let pivot = (col..n).find(|&r| !a[r][col].is_zero())?;
        a.swap(col, pivot);
        let pv = a[col][col].clone();
        for entry in a[col][col..].iter_mut() {
            *entry = &*entry / &pv;
        }
        let pivot_row = a[col].clone();
        for (r, row) in a.iter_mut().enumerate() {
            if r == col || row[col].is_zero() {
                continue;
            }
            let f = row[col].clone();
            for (entry, p) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                let delta = &f * p;
                *entry = &*entry - &delta;
            }
        }
    }
    Some(a.into_iter().map(|row| row[n].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation};
    use crate::simplex::solve_lp;
    use cfmap_intlin::Rat;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn unit_square() {
        let mut p = LpProblem::minimize(&[1, 1]);
        p.set_lower(0, r(0));
        p.set_lower(1, r(0));
        p.set_upper(0, r(1));
        p.set_upper(1, r(1));
        let mut vs = enumerate_vertices(&p);
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            vs,
            vec![
                vec![r(0), r(0)],
                vec![r(0), r(1)],
                vec![r(1), r(0)],
                vec![r(1), r(1)],
            ]
        );
    }

    #[test]
    fn matmul_formulation_i_extreme_points() {
        // Appendix, Formulation I (μ = 4): constraints π_i ≥ 1 and
        // π2 + π3 ≥ 5. The paper lists exactly two extreme points,
        // Π1 = [1, 1, μ] and Π2 = [1, μ, 1] — here [1,1,4] and [1,4,1].
        let mu = 4;
        let mut p = LpProblem::minimize(&[mu, mu, mu]);
        for i in 0..3 {
            p.set_lower(i, r(1));
        }
        p.constrain_i64(&[0, 1, 1], Relation::Ge, mu + 1);
        let mut vs = enumerate_vertices(&p);
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vs, vec![vec![r(1), r(1), r(4)], vec![r(1), r(4), r(1)]]);
        // Both are integral — the paper's premise for LP-ification.
        for v in &vs {
            assert!(v.iter().all(Rat::is_integer));
        }
    }

    #[test]
    fn transitive_closure_formulation_ii_extreme_points() {
        // Appendix, Formulation II (Example 5.2): π2,π3 ≥ 1,
        // π1−π2−π3 ≥ 1, π1−π2 ≥ 1, π1−π3 ≥ 1, π1 = μ+1. With the equality
        // π1 = μ+1 the polytope in (π2, π3) is {π2,π3 ≥ 1, π2+π3 ≤ μ},
        // whose extreme points include the paper's Π1 = [μ+1, 1, 1] and
        // the [μ+1, 1, μ−1]/[μ+1, μ−1, 1] pair. For μ = 4:
        let mu = 4i64;
        let mut p = LpProblem::minimize(&[mu, mu, mu]);
        p.constrain_i64(&[0, 1, 0], Relation::Ge, 1);
        p.constrain_i64(&[0, 0, 1], Relation::Ge, 1);
        p.constrain_i64(&[1, -1, -1], Relation::Ge, 1);
        p.constrain_i64(&[1, -1, 0], Relation::Ge, 1);
        p.constrain_i64(&[1, 0, -1], Relation::Ge, 1);
        p.constrain_i64(&[1, 0, 0], Relation::Eq, mu + 1);
        let mut vs = enumerate_vertices(&p);
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            vs,
            vec![
                vec![r(5), r(1), r(1)],
                vec![r(5), r(1), r(3)],
                vec![r(5), r(3), r(1)],
            ]
        );
        let best = best_vertex(&p).unwrap();
        assert_eq!(best.0, vec![r(5), r(1), r(1)]);
        assert_eq!(best.1, r(mu * (mu + 3))); // f = μ(π1+π2+π3) = 4·7 = 28, t = f+1
    }

    #[test]
    fn best_vertex_matches_simplex() {
        let mut p = LpProblem::minimize(&[3, 5]);
        p.set_lower(0, r(0));
        p.set_lower(1, r(0));
        p.constrain_i64(&[1, 1], Relation::Ge, 4);
        p.constrain_i64(&[1, 3], Relation::Ge, 6);
        p.set_upper(0, r(50));
        p.set_upper(1, r(50));
        let bv = best_vertex(&p).unwrap();
        let lp = solve_lp(&p);
        assert_eq!(Some(&bv.1), lp.value());
    }

    #[test]
    fn empty_polytope() {
        let mut p = LpProblem::minimize(&[1]);
        p.constrain_i64(&[1], Relation::Ge, 5);
        p.constrain_i64(&[1], Relation::Le, 3);
        assert!(enumerate_vertices(&p).is_empty());
        assert!(best_vertex(&p).is_none());
    }
}
