//! Randomized cross-validation of the exact LP stack: the simplex, the
//! vertex enumerator and the branch-and-bound ILP must tell one story.

use cfmap_intlin::Rat;
use cfmap_lp::problem::{LpProblem, Relation};
use cfmap_lp::vertex::{best_vertex, enumerate_vertices};
use cfmap_lp::{solve_ilp, solve_lp, LpOutcome};
use proptest::prelude::*;

/// Random bounded problems: 2 variables in a box plus up to 4 random
/// half-planes — always feasible at worst in the empty sense.
fn arb_problem() -> impl Strategy<Value = LpProblem> {
    (
        prop::collection::vec((-5i64..=5, -5i64..=5, -12i64..=12), 0..4),
        (-4i64..=4, -4i64..=4),
    )
        .prop_map(|(cuts, (c1, c2))| {
            let mut p = LpProblem::minimize(&[c1, c2]);
            p.set_lower(0, Rat::from_i64(0));
            p.set_lower(1, Rat::from_i64(0));
            p.set_upper(0, Rat::from_i64(10));
            p.set_upper(1, Rat::from_i64(10));
            for (a, b, rhs) in cuts {
                p.constrain_i64(&[a, b], Relation::Le, rhs);
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On bounded problems the simplex optimum equals the best vertex.
    #[test]
    fn simplex_matches_vertex_enumeration(p in arb_problem()) {
        let lp = solve_lp(&p);
        let bv = best_vertex(&p);
        match (lp, bv) {
            (LpOutcome::Optimal { value, .. }, Some((_, vval))) => {
                prop_assert_eq!(value, vval);
            }
            (LpOutcome::Infeasible, None) => {}
            (lp, bv) => {
                return Err(TestCaseError::fail(format!(
                    "disagreement: simplex {lp:?} vs vertices {bv:?}"
                )));
            }
        }
    }

    /// Every reported optimum is feasible and no enumerated vertex beats it.
    #[test]
    fn simplex_optimum_is_feasible_and_minimal(p in arb_problem()) {
        if let LpOutcome::Optimal { x, value } = solve_lp(&p) {
            prop_assert!(p.is_feasible(&x), "optimum not feasible");
            prop_assert_eq!(p.objective_value(&x), value.clone());
            for v in enumerate_vertices(&p) {
                prop_assert!(p.objective_value(&v) >= value);
            }
        }
    }

    /// ILP optimum is integral, feasible, and no worse than any integral
    /// point found by scanning the box.
    #[test]
    fn ilp_is_exact_on_small_boxes(p in arb_problem()) {
        let out = solve_ilp(&p, 100_000);
        // Brute-force the 11×11 integer grid.
        let mut best: Option<Rat> = None;
        for x0 in 0..=10i64 {
            for x1 in 0..=10i64 {
                let x = vec![Rat::from_i64(x0), Rat::from_i64(x1)];
                if p.is_feasible(&x) {
                    let v = p.objective_value(&x);
                    if best.as_ref().is_none_or(|b| &v < b) {
                        best = Some(v);
                    }
                }
            }
        }
        match (out, best) {
            (LpOutcome::Optimal { x, value }, Some(brute)) => {
                prop_assert!(x.iter().all(Rat::is_integer));
                prop_assert!(p.is_feasible(&x));
                prop_assert_eq!(value, brute);
            }
            (LpOutcome::Infeasible, None) => {}
            (out, brute) => {
                return Err(TestCaseError::fail(format!(
                    "disagreement: ILP {out:?} vs brute {brute:?}"
                )));
            }
        }
    }
}
