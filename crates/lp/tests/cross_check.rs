//! Randomized cross-validation of the exact LP stack: the simplex, the
//! vertex enumerator and the branch-and-bound ILP must tell one story.

use cfmap_intlin::Rat;
use cfmap_lp::problem::{LpProblem, Relation};
use cfmap_lp::vertex::{best_vertex, enumerate_vertices};
use cfmap_lp::{solve_ilp, solve_lp, LpOutcome};
use cfmap_testkit::gen;

/// Random bounded problems: 2 variables in a box plus up to 4 random
/// half-planes — always feasible at worst in the empty sense. Generated
/// as `(cuts, objective)` raw parts and assembled in each property.
fn build_problem(cuts: &[(i64, i64, i64)], c1: i64, c2: i64) -> LpProblem {
    let mut p = LpProblem::minimize(&[c1, c2]);
    p.set_lower(0, Rat::from_i64(0));
    p.set_lower(1, Rat::from_i64(0));
    p.set_upper(0, Rat::from_i64(10));
    p.set_upper(1, Rat::from_i64(10));
    for &(a, b, rhs) in cuts {
        p.constrain_i64(&[a, b], Relation::Le, rhs);
    }
    p
}

cfmap_testkit::props! {
    cases = 128;

    /// On bounded problems the simplex optimum equals the best vertex.
    fn simplex_matches_vertex_enumeration(
        cuts in gen::vec((-5i64..=5, -5i64..=5, -12i64..=12), 0..4),
        c1 in -4i64..=4,
        c2 in -4i64..=4,
    ) {
        let p = build_problem(&cuts, c1, c2);
        let lp = solve_lp(&p);
        let bv = best_vertex(&p);
        match (lp, bv) {
            (LpOutcome::Optimal { value, .. }, Some((_, vval))) => {
                assert_eq!(value, vval);
            }
            (LpOutcome::Infeasible, None) => {}
            (lp, bv) => {
                panic!("disagreement: simplex {lp:?} vs vertices {bv:?}");
            }
        }
    }

    /// Every reported optimum is feasible and no enumerated vertex beats it.
    fn simplex_optimum_is_feasible_and_minimal(
        cuts in gen::vec((-5i64..=5, -5i64..=5, -12i64..=12), 0..4),
        c1 in -4i64..=4,
        c2 in -4i64..=4,
    ) {
        let p = build_problem(&cuts, c1, c2);
        if let LpOutcome::Optimal { x, value } = solve_lp(&p) {
            assert!(p.is_feasible(&x), "optimum not feasible");
            assert_eq!(p.objective_value(&x), value.clone());
            for v in enumerate_vertices(&p) {
                assert!(p.objective_value(&v) >= value);
            }
        }
    }

    /// ILP optimum is integral, feasible, and no worse than any integral
    /// point found by scanning the box.
    fn ilp_is_exact_on_small_boxes(
        cuts in gen::vec((-5i64..=5, -5i64..=5, -12i64..=12), 0..4),
        c1 in -4i64..=4,
        c2 in -4i64..=4,
    ) {
        let p = build_problem(&cuts, c1, c2);
        let out = solve_ilp(&p, 100_000).expect("box-bounded B&B stays under the node cap");
        // Brute-force the 11×11 integer grid.
        let mut best: Option<Rat> = None;
        for x0 in 0..=10i64 {
            for x1 in 0..=10i64 {
                let x = vec![Rat::from_i64(x0), Rat::from_i64(x1)];
                if p.is_feasible(&x) {
                    let v = p.objective_value(&x);
                    if best.as_ref().is_none_or(|b| &v < b) {
                        best = Some(v);
                    }
                }
            }
        }
        match (out, best) {
            (LpOutcome::Optimal { x, value }, Some(brute)) => {
                assert!(x.iter().all(Rat::is_integer));
                assert!(p.is_feasible(&x));
                assert_eq!(value, brute);
            }
            (LpOutcome::Infeasible, None) => {}
            (out, brute) => {
                panic!("disagreement: ILP {out:?} vs brute {brute:?}");
            }
        }
    }
}
