//! Constant-bounded index sets (Equation 2.5, Assumption 2.1).
//!
//! `J = { [j₁, …, j_n]ᵀ : 0 ≤ j_i ≤ μ_i }` — the iteration space of an
//! `n`-deep nested loop with constant bounds. The upper bounds `μ_i` are
//! the paper's *problem size variables*. Points are plain `Vec<i64>`
//! because simulators iterate over millions of them; conversion to the
//! exact [`IVec`] type happens only at the linear-algebra boundary.

use cfmap_intlin::IVec;
use std::fmt;

/// An index point `j̄ ∈ Z^n` (machine precision; the boxes of interest are
/// tiny relative to `i64`).
pub type Point = Vec<i64>;

/// A constant-bounded index set `{0 ≤ j_i ≤ μ_i}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexSet {
    /// Upper bounds `μ_i` (inclusive); lower bounds are all zero.
    mu: Vec<i64>,
}

impl IndexSet {
    /// Build from upper bounds `μ_i ≥ 0` (inclusive).
    ///
    /// Panics on a negative bound.
    pub fn new(mu: &[i64]) -> IndexSet {
        assert!(mu.iter().all(|&m| m >= 0), "negative index-set bound");
        IndexSet { mu: mu.to_vec() }
    }

    /// The cube `0 ≤ j_i ≤ μ` in `n` dimensions (the paper's usual
    /// single-problem-size case).
    pub fn cube(n: usize, mu: i64) -> IndexSet {
        IndexSet::new(&vec![mu; n])
    }

    /// Algorithm dimension `n`.
    pub fn dim(&self) -> usize {
        self.mu.len()
    }

    /// The upper bounds `μ_i`.
    pub fn mu(&self) -> &[i64] {
        &self.mu
    }

    /// Upper bound of loop `i`.
    pub fn mu_i(&self, i: usize) -> i64 {
        self.mu[i]
    }

    /// Number of index points `Π (μ_i + 1)`.
    pub fn len(&self) -> u128 {
        self.mu.iter().map(|&m| (m as u128) + 1).product()
    }

    /// `true` iff the set has no points (never, given `μ_i ≥ 0` — kept for
    /// API completeness with zero-dimensional sets).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Membership test.
    pub fn contains(&self, j: &[i64]) -> bool {
        j.len() == self.dim() && j.iter().zip(&self.mu).all(|(&ji, &mi)| ji >= 0 && ji <= mi)
    }

    /// Membership of `j + γ` for an offset given as exact integers; returns
    /// `false` when any entry of γ overflows the box arithmetic (such a
    /// point is far outside the box anyway).
    pub fn contains_offset(&self, j: &[i64], gamma: &IVec) -> bool {
        if gamma.dim() != self.dim() || j.len() != self.dim() {
            return false;
        }
        for i in 0..self.dim() {
            let Some(g) = gamma[i].to_i64() else { return false };
            match j[i].checked_add(g) {
                Some(v) if v >= 0 && v <= self.mu[i] => {}
                _ => return false,
            }
        }
        true
    }

    /// Iterate all points in lexicographic order.
    pub fn iter(&self) -> IndexIter<'_> {
        IndexIter { set: self, next: Some(vec![0; self.dim()]) }
    }

    /// The extremal corner `[μ₁, …, μ_n]`.
    pub fn max_corner(&self) -> Point {
        self.mu.clone()
    }

    /// The index set with axes reordered: new axis `i` is old axis
    /// `perm[i]`. `perm` must be a permutation of `0..n`. Axis
    /// permutation is a symmetry of the whole mapping theory (relabeling
    /// loop indices), which is what the canonicalization layer exploits.
    pub fn permuted(&self, perm: &[usize]) -> IndexSet {
        assert_eq!(perm.len(), self.dim(), "permutation length mismatch");
        IndexSet::new(&perm.iter().map(|&p| self.mu[p]).collect::<Vec<i64>>())
    }
}

impl fmt::Display for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{0 ≤ j ≤ (")?;
        for (i, m) in self.mu.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, ")}}")
    }
}

/// Lexicographic iterator over all points of an [`IndexSet`].
pub struct IndexIter<'a> {
    set: &'a IndexSet,
    next: Option<Point>,
}

impl Iterator for IndexIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let cur = self.next.take()?;
        // Compute the successor (odometer increment from the last axis).
        let mut succ = cur.clone();
        let mut i = succ.len();
        loop {
            if i == 0 {
                // Wrapped past the first axis: exhausted. A 0-dimensional
                // set has exactly one (empty) point.
                self.next = None;
                break;
            }
            i -= 1;
            if succ[i] < self.set.mu[i] {
                succ[i] += 1;
                for s in succ.iter_mut().skip(i + 1) {
                    *s = 0;
                }
                self.next = Some(succ);
                break;
            }
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let j = IndexSet::new(&[4, 4]);
        assert_eq!(j.dim(), 2);
        assert_eq!(j.len(), 25);
        assert_eq!(IndexSet::cube(4, 6).len(), 7u128.pow(4));
        assert_eq!(j.max_corner(), vec![4, 4]);
        assert_eq!(j.to_string(), "{0 ≤ j ≤ (4, 4)}");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_bound_rejected() {
        let _ = IndexSet::new(&[3, -1]);
    }

    #[test]
    fn membership() {
        let j = IndexSet::new(&[4, 4]);
        assert!(j.contains(&[0, 0]));
        assert!(j.contains(&[4, 4]));
        assert!(!j.contains(&[5, 0]));
        assert!(!j.contains(&[0, -1]));
        assert!(!j.contains(&[1, 2, 3]));
    }

    #[test]
    fn offset_membership_matches_figure_1() {
        // Figure 1: J = {0..4}², γ1 = [1,1] lands inside from [0,0];
        // γ2 = [3,5] never lands inside from any point.
        let j = IndexSet::new(&[4, 4]);
        let g1 = IVec::from_i64s(&[1, 1]);
        let g2 = IVec::from_i64s(&[3, 5]);
        assert!(j.contains_offset(&[0, 0], &g1));
        for p in j.iter() {
            assert!(!j.contains_offset(&p, &g2), "γ2 should be feasible");
        }
    }

    #[test]
    fn offset_overflow_is_outside() {
        let j = IndexSet::new(&[4]);
        let huge = IVec::new(vec![cfmap_intlin::Int::from(2i64).pow(80)]);
        assert!(!j.contains_offset(&[0], &huge));
        let near_max = IVec::from_i64s(&[i64::MAX]);
        assert!(!j.contains_offset(&[1], &near_max));
    }

    #[test]
    fn iteration_lexicographic_and_complete() {
        let j = IndexSet::new(&[1, 2]);
        let pts: Vec<Point> = j.iter().collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2],
            ]
        );
        assert_eq!(pts.len() as u128, j.len());
    }

    #[test]
    fn zero_dimensional_set() {
        let j = IndexSet::new(&[]);
        assert_eq!(j.len(), 1);
        let pts: Vec<Point> = j.iter().collect();
        assert_eq!(pts, vec![Vec::<i64>::new()]);
    }

    #[test]
    fn degenerate_axis() {
        let j = IndexSet::new(&[0, 2]);
        let pts: Vec<Point> = j.iter().collect();
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![0, 2]]);
    }

    cfmap_testkit::props! {
        cases = 256;

        fn iter_count_matches_len(mu in cfmap_testkit::gen::vec(0i64..4, 1..4)) {
            let j = IndexSet::new(&mu);
            assert_eq!(j.iter().count() as u128, j.len());
        }

        fn all_iterated_points_are_members(mu in cfmap_testkit::gen::vec(0i64..4, 1..4)) {
            let j = IndexSet::new(&mu);
            for p in j.iter() {
                assert!(j.contains(&p));
            }
        }

        fn iteration_is_strictly_increasing(mu in cfmap_testkit::gen::vec(0i64..4, 1..4)) {
            let j = IndexSet::new(&mu);
            let pts: Vec<Point> = j.iter().collect();
            for w in pts.windows(2) {
                assert!(w[0] < w[1], "not lexicographically increasing");
            }
        }
    }
}
