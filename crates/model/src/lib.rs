//! The uniform dependence algorithm model of Shang & Fortes (ICPP 1990).
//!
//! Definition 2.1 of the paper: a *uniform dependence algorithm* is
//! `v(j̄) = g_j̄(v(j̄−d̄₁), …, v(j̄−d̄_m))` over an index set `J ⊆ Z^n`, with
//! constant dependence vectors `d̄ᵢ`. For the mapping theory only the
//! *structure* `(J, D)` matters, and that is what this crate models:
//!
//! * [`index_set`] — constant-bounded index sets (Equation 2.5 /
//!   Assumption 2.1): boxes `0 ≤ j_i ≤ μ_i`.
//! * [`dependence`] — dependence matrices `D` and their validity checks.
//! * [`algorithm`] — the `(J, D)` pair.
//! * [`schedule`] — linear schedule vectors `Π` (`ΠD > 0`, Equation 2.7's
//!   total execution time).
//! * [`algorithms`] — the paper's workload library: matrix multiplication
//!   (Example 3.1), reindexed transitive closure (Example 3.2), plus the
//!   bit-level and classic kernels the introduction motivates
//!   (convolution, LU decomposition, 4-D/5-D bit-level matmul …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod algorithms;
pub mod bitexpand;
pub mod bounds;
pub mod builder;
pub mod dependence;
pub mod index_set;
pub mod schedule;

pub use algorithm::Uda;
pub use builder::UdaBuilder;
pub use dependence::DependenceMatrix;
pub use index_set::{IndexSet, Point};
pub use schedule::LinearSchedule;
