//! Word-level → bit-level algorithm expansion (the RAB [26] front-end,
//! mechanized).
//!
//! The paper's motivating pipeline expands a word-level nested loop into a
//! bit-level uniform dependence algorithm before mapping: *"algorithms
//! are first expanded into bit level algorithms, and second, the
//! dependence relations are analyzed and the algorithm is uniformized"*.
//! RAB itself is unpublished tooling, so this module implements the
//! standard bit-serial expansion (the substitution documented in
//! `DESIGN.md` §5): two bit axes are appended — the multiplier-bit axis
//! `b` and the bit-position axis `p` — and the dependence matrix grows by
//! the bit-serial multiply-accumulate chains:
//!
//! * every word-level dependence extends with zero bit components (the
//!   word value is consumed once its bits are),
//! * `e_b` — partial-product accumulation across multiplier bits,
//! * `e_p` — carry ripple from bit position `p−1` into `p`,
//! * `e_b + e_p` — the ×2 shift of long multiplication (bit `p` of step
//!   `b` consumes bit `p−1` of step `b−1`).
//!
//! Applying this to the word-level [`crate::algorithms::matmul`] /
//! [`crate::algorithms::convolution`] / [`crate::algorithms::lu_decomposition`]
//! reproduces exactly the library's hand-written 4-D/5-D bit-level
//! kernels (tested below), which is the point: the bit-level workloads
//! are *derived*, not ad hoc.

use crate::algorithm::Uda;
use crate::dependence::DependenceMatrix;
use crate::index_set::IndexSet;
use cfmap_intlin::{IMat, IVec, Int};

/// Expand a word-level algorithm into its bit-level form by appending a
/// multiplier-bit axis and a bit-position axis, both bounded by `mu_bit`.
///
/// The result has dimension `n + 2` and `m + 3` dependence vectors.
pub fn expand_to_bit_level(alg: &Uda, mu_bit: i64) -> Uda {
    assert!(mu_bit >= 0, "negative bit-axis bound");
    let n = alg.dim();
    let mut mu = alg.index_set.mu().to_vec();
    mu.push(mu_bit);
    mu.push(mu_bit);

    let mut cols: Vec<IVec> = Vec::with_capacity(alg.num_deps() + 3);
    // Word-level dependencies, zero-extended into the bit axes.
    for i in 0..alg.num_deps() {
        let d = alg.deps.dep(i);
        let mut e = IVec::zeros(n + 2);
        for c in 0..n {
            e[c] = d[c].clone();
        }
        cols.push(e);
    }
    // Bit-serial chains.
    let mut acc = IVec::zeros(n + 2);
    acc[n] = Int::one();
    cols.push(acc); // e_b: partial-product accumulation
    let mut carry = IVec::zeros(n + 2);
    carry[n + 1] = Int::one();
    cols.push(carry); // e_p: carry ripple
    let mut shift = IVec::zeros(n + 2);
    shift[n] = Int::one();
    shift[n + 1] = Int::one();
    cols.push(shift); // e_b + e_p: shifted partial product

    Uda::new(
        format!("{}@bit(μ_b={mu_bit})", alg.name),
        IndexSet::new(&mu),
        DependenceMatrix::from_mat(IMat::from_cols(&cols)),
    )
}

/// Extend a word-level space map to the bit-level algorithm by ignoring
/// the bit axes (bits of one word stay on the word's processor) — the
/// usual starting point for 2-D bit-level arrays where the two word axes
/// become the array axes.
pub fn extend_space_rows(word_rows: &[Vec<i64>]) -> Vec<Vec<i64>> {
    word_rows
        .iter()
        .map(|r| {
            let mut e = r.clone();
            e.push(0);
            e.push(0);
            e
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;
    use crate::schedule::LinearSchedule;

    #[test]
    fn expansion_shape() {
        let word = algorithms::matmul(2);
        let bit = expand_to_bit_level(&word, 3);
        assert_eq!(bit.dim(), 5);
        assert_eq!(bit.num_deps(), 6);
        assert_eq!(bit.index_set.mu(), &[2, 2, 2, 3, 3]);
        assert!(bit.name.contains("matmul"));
    }

    #[test]
    fn matmul_expansion_reproduces_handwritten_kernel() {
        let derived = expand_to_bit_level(&algorithms::matmul(2), 3);
        let handwritten = algorithms::bitlevel_matmul(2, 3);
        assert_eq!(derived.index_set, handwritten.index_set);
        assert_eq!(derived.deps, handwritten.deps);
    }

    #[test]
    fn convolution_expansion_reproduces_handwritten_kernel() {
        let derived = expand_to_bit_level(&algorithms::convolution(3, 3), 3);
        let handwritten = algorithms::bitlevel_convolution(3, 3);
        assert_eq!(derived.index_set, handwritten.index_set);
        assert_eq!(derived.deps, handwritten.deps);
    }

    #[test]
    fn lu_expansion_reproduces_handwritten_kernel() {
        let derived = expand_to_bit_level(&algorithms::lu_decomposition(2), 3);
        let handwritten = algorithms::bitlevel_lu(2, 3);
        assert_eq!(derived.index_set, handwritten.index_set);
        assert_eq!(derived.deps, handwritten.deps);
    }

    #[test]
    fn expansion_preserves_schedulability() {
        // Any valid word-level schedule extends to a valid bit-level one
        // by appending positive bit entries.
        let word = algorithms::transitive_closure(3);
        let word_pi = LinearSchedule::new(&[4, 1, 1]);
        assert!(word_pi.is_valid_for(&word.deps));
        let bit = expand_to_bit_level(&word, 2);
        let bit_pi = LinearSchedule::new(&[4, 1, 1, 1, 1]);
        assert!(bit_pi.is_valid_for(&bit.deps));
    }

    #[test]
    fn space_row_extension() {
        let rows = extend_space_rows(&[vec![1, 0, 0], vec![0, 1, 0]]);
        assert_eq!(rows, vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]);
    }

    #[test]
    fn double_expansion_composes() {
        // Expanding twice models nested bit-serialization; shape-checks
        // the generality of the transformer.
        let word = algorithms::matvec(2, 2);
        let once = expand_to_bit_level(&word, 1);
        let twice = expand_to_bit_level(&once, 1);
        assert_eq!(twice.dim(), 6);
        assert_eq!(twice.num_deps(), word.num_deps() + 6);
    }

    #[test]
    #[should_panic(expected = "negative bit-axis bound")]
    fn negative_bit_bound_rejected() {
        let _ = expand_to_bit_level(&algorithms::matmul(2), -1);
    }
}
