//! Linear schedule vectors `Π` (Definition 2.2, condition 1; Equation 2.7).
//!
//! A linear schedule executes computation `j̄` at time `Π·j̄`. Validity
//! (`ΠD > 0`) preserves the dependence partial order; for constant-bounded
//! index sets the total execution time has the closed form
//! `t = 1 + Σ |π_i|·μ_i` (Equation 2.7), which is also what Problem 2.2
//! minimizes (its objective `f` is `t − 1`).

use crate::algorithm::Uda;
use crate::dependence::DependenceMatrix;
use crate::index_set::IndexSet;
use cfmap_intlin::{IVec, Int};
use std::fmt;

/// A linear schedule vector `Π ∈ Z^{1×n}`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinearSchedule {
    pi: Vec<i64>,
}

impl LinearSchedule {
    /// Build from entries.
    pub fn new(pi: &[i64]) -> LinearSchedule {
        LinearSchedule { pi: pi.to_vec() }
    }

    /// Entries.
    pub fn as_slice(&self) -> &[i64] {
        &self.pi
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.pi.len()
    }

    /// As an exact row vector.
    pub fn as_ivec(&self) -> IVec {
        IVec::from_i64s(&self.pi)
    }

    /// Execution time of index point `j̄`: `Π·j̄`.
    pub fn time_of(&self, j: &[i64]) -> i64 {
        assert_eq!(j.len(), self.dim(), "time_of: dimension mismatch");
        self.pi.iter().zip(j).map(|(&p, &ji)| p * ji).sum()
    }

    /// `Π·d̄ᵢ` for each dependence: the data travel times of
    /// Definition 2.2 condition 2.
    pub fn dep_times(&self, deps: &DependenceMatrix) -> Vec<Int> {
        let pi = self.as_ivec();
        (0..deps.num_deps()).map(|i| pi.dot(&deps.dep(i))).collect()
    }

    /// Condition 1 of Definition 2.2: `ΠD > 0` (every dependence strictly
    /// positive).
    pub fn is_valid_for(&self, deps: &DependenceMatrix) -> bool {
        self.dep_times(deps).iter().all(Int::is_positive)
    }

    /// The closed-form total execution time `t = 1 + Σ |π_i| μ_i`
    /// (Equation 2.7), valid for constant-bounded index sets.
    pub fn total_time(&self, j: &IndexSet) -> i64 {
        assert_eq!(j.dim(), self.dim(), "total_time: dimension mismatch");
        1 + self
            .pi
            .iter()
            .zip(j.mu())
            .map(|(&p, &m)| p.unsigned_abs() as i64 * m)
            .sum::<i64>()
    }

    /// The schedule length `f = max Π(j̄₁ − j̄₂)` measured by brute force
    /// over the index set (Equation 2.4 minus the `+1`). Used in tests to
    /// validate Equation 2.7.
    pub fn makespan_brute_force(&self, j: &IndexSet) -> i64 {
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for p in j.iter() {
            let t = self.time_of(&p);
            min = min.min(t);
            max = max.max(t);
        }
        if min == i64::MAX {
            0
        } else {
            max - min
        }
    }

    /// Convenience: `total_time` for an algorithm.
    pub fn total_time_for(&self, alg: &Uda) -> i64 {
        self.total_time(&alg.index_set)
    }
}

impl fmt::Display for LinearSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Π = [")?;
        for (i, p) in self.pi.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_deps() -> DependenceMatrix {
        DependenceMatrix::from_columns(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])
    }

    fn tc_deps() -> DependenceMatrix {
        DependenceMatrix::from_columns(&[
            &[0, 0, 1],
            &[0, 1, 0],
            &[1, -1, -1],
            &[1, -1, 0],
            &[1, 0, -1],
        ])
    }

    #[test]
    fn validity_for_matmul() {
        // ΠD > 0 for D = I means all entries positive.
        assert!(LinearSchedule::new(&[1, 4, 1]).is_valid_for(&matmul_deps()));
        assert!(LinearSchedule::new(&[1, 1, 1]).is_valid_for(&matmul_deps()));
        assert!(!LinearSchedule::new(&[0, 4, 1]).is_valid_for(&matmul_deps()));
        assert!(!LinearSchedule::new(&[-1, 4, 1]).is_valid_for(&matmul_deps()));
    }

    #[test]
    fn validity_for_transitive_closure() {
        // Example 5.2: needs π2, π3 > 0, π1−π2−π3 > 0, π1−π2 > 0, π1−π3 > 0.
        assert!(LinearSchedule::new(&[5, 1, 1]).is_valid_for(&tc_deps()));
        assert!(LinearSchedule::new(&[3, 1, 1]).is_valid_for(&tc_deps()));
        // π1 − π2 − π3 = 0 violates strictness.
        assert!(!LinearSchedule::new(&[2, 1, 1]).is_valid_for(&tc_deps()));
        assert!(!LinearSchedule::new(&[5, 0, 1]).is_valid_for(&tc_deps()));
    }

    #[test]
    fn paper_total_times() {
        let j = IndexSet::cube(3, 4);
        // Example 5.1: Π = [1, μ, 1] → t = μ(μ+2)+1 = 25.
        assert_eq!(LinearSchedule::new(&[1, 4, 1]).total_time(&j), 25);
        // [23]'s Π' = [2, 1, μ] → t = μ(μ+3)+1 = 29.
        assert_eq!(LinearSchedule::new(&[2, 1, 4]).total_time(&j), 29);
        // Example 5.2: Π = [μ+1, 1, 1] → t = μ(μ+3)+1 = 29.
        assert_eq!(LinearSchedule::new(&[5, 1, 1]).total_time(&j), 29);
        // [22]'s Π' = [2μ+1, 1, 1] → t = μ(2μ+3)+1 = 45.
        assert_eq!(LinearSchedule::new(&[9, 1, 1]).total_time(&j), 45);
    }

    #[test]
    fn dep_times_count_buffers() {
        // Example 5.1: Πd̄₂ = μ = 4 with one link hop ⇒ 3 buffers.
        let pi = LinearSchedule::new(&[1, 4, 1]);
        let times = pi.dep_times(&matmul_deps());
        assert_eq!(times, vec![Int::from(1), Int::from(4), Int::from(1)]);
    }

    #[test]
    fn negative_entries_use_absolute_value() {
        let j = IndexSet::new(&[3, 5]);
        let pi = LinearSchedule::new(&[-2, 1]);
        assert_eq!(pi.total_time(&j), 1 + 2 * 3 + 5);
        assert_eq!(pi.makespan_brute_force(&j), 2 * 3 + 5);
    }

    cfmap_testkit::props! {
        cases = 256;

        fn eq_2_7_matches_brute_force(
            pi in cfmap_testkit::gen::vec(-4i64..=4, 3),
            mu in cfmap_testkit::gen::vec(0i64..4, 3),
        ) {
            let sched = LinearSchedule::new(&pi);
            let j = IndexSet::new(&mu);
            assert_eq!(
                sched.total_time(&j),
                sched.makespan_brute_force(&j) + 1,
                "Equation 2.7 disagrees with Equation 2.4"
            );
        }

        fn monotonicity_theorem_2_1(
            pi in cfmap_testkit::gen::vec(1i64..5, 3),
            mu in cfmap_testkit::gen::vec(1i64..5, 3),
            axis in 0usize..3,
        ) {
            // Theorem 2.1: t is monotonically increasing in |π_i|.
            let j = IndexSet::new(&mu);
            let base = LinearSchedule::new(&pi).total_time(&j);
            let mut bumped = pi.clone();
            bumped[axis] += 1;
            let bigger = LinearSchedule::new(&bumped).total_time(&j);
            assert!(bigger >= base);
            if mu[axis] > 0 {
                assert!(bigger > base);
            }
        }
    }
}
