//! Fluent construction of custom uniform dependence algorithms.
//!
//! The library ships the paper's workloads in [`crate::algorithms`], but a
//! downstream user bringing their own loop nest builds it here:
//!
//! ```
//! use cfmap_model::builder::UdaBuilder;
//!
//! // for i in 0..=7 { for j in 0..=3 { a[i][j] = f(a[i-1][j], a[i][j-1]) } }
//! let alg = UdaBuilder::new("wavefront")
//!     .bounds(&[7, 3])
//!     .dep(&[1, 0])
//!     .dep(&[0, 1])
//!     .build();
//! assert_eq!(alg.dim(), 2);
//! assert_eq!(alg.num_deps(), 2);
//! ```

use crate::algorithm::Uda;
use crate::dependence::DependenceMatrix;
use crate::index_set::IndexSet;
use cfmap_intlin::{IMat, IVec};

/// Builder for [`Uda`] values.
#[derive(Clone, Debug)]
pub struct UdaBuilder {
    name: String,
    bounds: Option<Vec<i64>>,
    deps: Vec<Vec<i64>>,
}

impl UdaBuilder {
    /// Start a new algorithm with the given name.
    pub fn new(name: impl Into<String>) -> UdaBuilder {
        UdaBuilder { name: name.into(), bounds: None, deps: Vec::new() }
    }

    /// Set the loop upper bounds `μ_i` (inclusive; lower bounds are 0 per
    /// Assumption 2.1).
    pub fn bounds(mut self, mu: &[i64]) -> UdaBuilder {
        self.bounds = Some(mu.to_vec());
        self
    }

    /// Convenience: an `n`-cube `0 ≤ j_i ≤ μ`.
    pub fn cube(mut self, n: usize, mu: i64) -> UdaBuilder {
        self.bounds = Some(vec![mu; n]);
        self
    }

    /// Add one dependence vector (a column of `D`).
    pub fn dep(mut self, d: &[i64]) -> UdaBuilder {
        self.deps.push(d.to_vec());
        self
    }

    /// Add several dependence vectors.
    pub fn deps(mut self, ds: &[&[i64]]) -> UdaBuilder {
        for d in ds {
            self.deps.push(d.to_vec());
        }
        self
    }

    /// Finish, validating dimensions, non-zero dependencies and duplicate
    /// columns.
    ///
    /// Panics with a descriptive message on an ill-formed algorithm —
    /// builders are used at configuration time where panics are the right
    /// failure mode.
    pub fn build(self) -> Uda {
        let bounds = self.bounds.expect("UdaBuilder: bounds not set");
        let n = bounds.len();
        assert!(n > 0, "UdaBuilder: zero-dimensional algorithm");
        assert!(!self.deps.is_empty(), "UdaBuilder: no dependence vectors");
        for (i, d) in self.deps.iter().enumerate() {
            assert_eq!(d.len(), n, "UdaBuilder: dependence {i} has arity {} ≠ n = {n}", d.len());
        }
        // Reject duplicate dependence columns — harmless mathematically
        // but always a user mistake.
        for i in 0..self.deps.len() {
            for j in i + 1..self.deps.len() {
                assert_ne!(self.deps[i], self.deps[j], "UdaBuilder: duplicate dependence vector");
            }
        }
        let cols: Vec<IVec> = self.deps.iter().map(|d| IVec::from_i64s(d)).collect();
        let mat = IMat::from_cols(&cols);
        Uda::new(self.name, IndexSet::new(&bounds), DependenceMatrix::from_mat(mat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_wavefront() {
        let alg = UdaBuilder::new("wavefront")
            .bounds(&[7, 3])
            .dep(&[1, 0])
            .dep(&[0, 1])
            .build();
        assert_eq!(alg.name, "wavefront");
        assert_eq!(alg.dim(), 2);
        assert_eq!(alg.num_deps(), 2);
        assert_eq!(alg.index_set.mu(), &[7, 3]);
    }

    #[test]
    fn cube_and_deps_helpers() {
        let alg = UdaBuilder::new("x")
            .cube(3, 4)
            .deps(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])
            .build();
        assert_eq!(alg.dim(), 3);
        assert_eq!(alg.num_computations(), 125);
    }

    #[test]
    #[should_panic(expected = "bounds not set")]
    fn missing_bounds_rejected() {
        let _ = UdaBuilder::new("x").dep(&[1]).build();
    }

    #[test]
    #[should_panic(expected = "no dependence vectors")]
    fn missing_deps_rejected() {
        let _ = UdaBuilder::new("x").bounds(&[3]).build();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_rejected() {
        let _ = UdaBuilder::new("x").bounds(&[3, 3]).dep(&[1]).build();
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_dep_rejected() {
        let _ = UdaBuilder::new("x").bounds(&[3]).dep(&[1]).dep(&[1]).build();
    }

    #[test]
    #[should_panic(expected = "zero dependence")]
    fn zero_dep_rejected() {
        let _ = UdaBuilder::new("x").bounds(&[3, 3]).dep(&[0, 0]).build();
    }
}
