//! The uniform dependence algorithm `(J, D)` (Definition 2.1).
//!
//! For mapping purposes the paper characterizes an algorithm *"simply by
//! the pair (J, D)"* — index set plus dependence matrix. Executable
//! semantics (what `g_j̄` actually computes) live in `cfmap-systolic`,
//! which attaches computation closures when it simulates a mapped design.

use crate::dependence::DependenceMatrix;
use crate::index_set::{IndexSet, Point};
use std::fmt;

/// A uniform dependence algorithm: the structural pair `(J, D)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Uda {
    /// Human-readable name (e.g. `"matmul(μ=4)"`).
    pub name: String,
    /// The index set `J`.
    pub index_set: IndexSet,
    /// The dependence matrix `D`.
    pub deps: DependenceMatrix,
}

impl Uda {
    /// Build an algorithm, checking that `J` and `D` agree on `n`.
    pub fn new(name: impl Into<String>, index_set: IndexSet, deps: DependenceMatrix) -> Uda {
        assert_eq!(
            index_set.dim(),
            deps.dim(),
            "index set and dependence matrix dimension mismatch"
        );
        Uda { name: name.into(), index_set, deps }
    }

    /// Algorithm dimension `n`.
    pub fn dim(&self) -> usize {
        self.index_set.dim()
    }

    /// Number of dependence vectors `m`.
    pub fn num_deps(&self) -> usize {
        self.deps.num_deps()
    }

    /// The predecessors of `j̄` *inside* the index set: the points
    /// `j̄ − d̄ᵢ ∈ J` whose values computation `j̄` consumes.
    pub fn predecessors(&self, j: &[i64]) -> Vec<(usize, Point)> {
        let mut preds = Vec::new();
        for i in 0..self.num_deps() {
            let d = self.deps.dep_i64(i);
            let p: Point = j.iter().zip(&d).map(|(&ji, &di)| ji - di).collect();
            if self.index_set.contains(&p) {
                preds.push((i, p));
            }
        }
        preds
    }

    /// Total number of computations `|J|`.
    pub fn num_computations(&self) -> u128 {
        self.index_set.len()
    }

    /// The algorithm with axes reordered: new axis `i` is old axis
    /// `perm[i]` in both `J` and `D`. Relabeling loop indices is a
    /// symmetry of the mapping theory: a schedule `Π'` for the permuted
    /// algorithm corresponds to `Π` with `π_{perm[i]} = π'_i` for the
    /// original, with identical objective and conflict structure.
    pub fn permuted_axes(&self, perm: &[usize]) -> Uda {
        Uda::new(
            self.name.clone(),
            self.index_set.permuted(perm),
            self.deps.permuted_rows(perm),
        )
    }

    /// Sanity check used by tests and the harness: the dependence graph
    /// restricted to `J` must be acyclic, which for uniform dependencies
    /// holds iff some strictly separating hyperplane exists. A sufficient
    /// *witness* is any valid schedule; this method checks the cheap
    /// necessary condition that no dependence vector is the negation of
    /// another (which would create a 2-cycle whenever both endpoints lie
    /// in `J`).
    pub fn has_antiparallel_dependence_pair(&self) -> bool {
        let deps = self.deps.deps();
        for (i, a) in deps.iter().enumerate() {
            for b in deps.iter().skip(i + 1) {
                if &-a == b {
                    return true;
                }
            }
        }
        false
    }
}

impl fmt::Display for Uda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: n={} m={} J={}", self.name, self.dim(), self.num_deps(), self.index_set)?;
        write!(f, "D =\n{}", self.deps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul(mu: i64) -> Uda {
        Uda::new(
            format!("matmul(μ={mu})"),
            IndexSet::cube(3, mu),
            DependenceMatrix::from_columns(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]),
        )
    }

    #[test]
    fn construction_and_accessors() {
        let a = matmul(4);
        assert_eq!(a.dim(), 3);
        assert_eq!(a.num_deps(), 3);
        assert_eq!(a.num_computations(), 125);
        assert!(!a.has_antiparallel_dependence_pair());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_rejected() {
        let _ = Uda::new(
            "bad",
            IndexSet::cube(2, 3),
            DependenceMatrix::from_columns(&[&[1, 0, 0]]),
        );
    }

    #[test]
    fn predecessors_respect_boundary() {
        let a = matmul(4);
        // Interior point: all three predecessors present.
        assert_eq!(a.predecessors(&[2, 2, 2]).len(), 3);
        // Origin: no predecessors in J.
        assert!(a.predecessors(&[0, 0, 0]).is_empty());
        // Face point: partial.
        let preds = a.predecessors(&[0, 3, 3]);
        assert_eq!(preds.len(), 2);
        assert!(preds.iter().all(|(_, p)| a.index_set.contains(p)));
    }

    #[test]
    fn antiparallel_detection() {
        let a = Uda::new(
            "cycle-risk",
            IndexSet::cube(2, 3),
            DependenceMatrix::from_columns(&[&[1, 0], &[-1, 0]]),
        );
        assert!(a.has_antiparallel_dependence_pair());
    }

    #[test]
    fn display_contains_name_and_sizes() {
        let s = matmul(2).to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("n=3"));
        assert!(s.contains("m=3"));
    }
}
