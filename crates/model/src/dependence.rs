//! Dependence matrices `D = [d̄₁, …, d̄_m]` (Definition 2.1 (4)).
//!
//! Each column is a constant dependence vector: computation `j̄` consumes
//! the value produced at `j̄ − d̄ᵢ` (when that point is in the index set).

use cfmap_intlin::{IMat, IVec};
use std::fmt;

/// A dependence matrix: `n × m`, one column per dependence vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DependenceMatrix {
    mat: IMat,
}

impl DependenceMatrix {
    /// Build from columns given as machine-integer slices.
    ///
    /// Panics if columns are ragged or if any dependence vector is zero
    /// (a zero dependence would make a computation depend on itself).
    pub fn from_columns(cols: &[&[i64]]) -> DependenceMatrix {
        let vecs: Vec<IVec> = cols.iter().map(|c| IVec::from_i64s(c)).collect();
        for (i, v) in vecs.iter().enumerate() {
            assert!(!v.is_zero(), "zero dependence vector at column {i}");
        }
        DependenceMatrix { mat: IMat::from_cols(&vecs) }
    }

    /// Build from an existing matrix (columns are the dependencies).
    pub fn from_mat(mat: IMat) -> DependenceMatrix {
        for c in 0..mat.ncols() {
            assert!(!mat.col(c).is_zero(), "zero dependence vector at column {c}");
        }
        DependenceMatrix { mat }
    }

    /// Algorithm dimension `n` (rows).
    pub fn dim(&self) -> usize {
        self.mat.nrows()
    }

    /// Number of dependence vectors `m` (columns).
    pub fn num_deps(&self) -> usize {
        self.mat.ncols()
    }

    /// Dependence vector `d̄ᵢ`.
    pub fn dep(&self, i: usize) -> IVec {
        self.mat.col(i)
    }

    /// All dependence vectors.
    pub fn deps(&self) -> Vec<IVec> {
        self.mat.columns()
    }

    /// Dependence vector `d̄ᵢ` as machine integers.
    pub fn dep_i64(&self, i: usize) -> Vec<i64> {
        self.dep(i).to_i64s().expect("dependence entries fit i64 by construction")
    }

    /// The underlying matrix `D`.
    pub fn as_mat(&self) -> &IMat {
        &self.mat
    }

    /// Each column as machine integers.
    pub fn columns_i64(&self) -> Vec<Vec<i64>> {
        (0..self.num_deps()).map(|i| self.dep_i64(i)).collect()
    }

    /// The matrix with rows (axes) reordered: new row `i` is old row
    /// `perm[i]`. Matches [`crate::IndexSet::permuted`]; column order is
    /// preserved.
    pub fn permuted_rows(&self, perm: &[usize]) -> DependenceMatrix {
        assert_eq!(perm.len(), self.dim(), "permutation length mismatch");
        let cols = self.columns_i64();
        let permuted: Vec<Vec<i64>> =
            cols.iter().map(|c| perm.iter().map(|&p| c[p]).collect()).collect();
        let refs: Vec<&[i64]> = permuted.iter().map(Vec::as_slice).collect();
        DependenceMatrix::from_columns(&refs)
    }

    /// The matrix with columns sorted lexicographically. The columns of
    /// `D` are a *set* of dependence vectors — their order carries no
    /// semantics — so sorting yields a canonical representative used as
    /// part of a design-cache key.
    pub fn with_sorted_columns(&self) -> DependenceMatrix {
        let mut cols = self.columns_i64();
        cols.sort();
        let refs: Vec<&[i64]> = cols.iter().map(Vec::as_slice).collect();
        DependenceMatrix::from_columns(&refs)
    }

    /// `true` iff every entry of every dependence is in {−1, 0, 1}.
    ///
    /// This is the condition under which the paper's integer programming
    /// formulation converts to linear programs (Section 5, discussion
    /// following (5.2)).
    pub fn entries_in_unit_range(&self) -> bool {
        self.mat.max_abs() <= cfmap_intlin::Int::one()
    }
}

impl fmt::Display for DependenceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_dependencies() {
        // Example 3.1 / Equation 3.4: D = I₃.
        let d = DependenceMatrix::from_columns(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.num_deps(), 3);
        assert_eq!(d.dep_i64(1), vec![0, 1, 0]);
        assert!(d.entries_in_unit_range());
    }

    #[test]
    fn transitive_closure_dependencies() {
        // Example 3.2 / Equation 3.6.
        let d = DependenceMatrix::from_columns(&[
            &[0, 0, 1],
            &[0, 1, 0],
            &[1, -1, -1],
            &[1, -1, 0],
            &[1, 0, -1],
        ]);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.num_deps(), 5);
        assert!(d.entries_in_unit_range());
        assert_eq!(d.dep_i64(2), vec![1, -1, -1]);
    }

    #[test]
    #[should_panic(expected = "zero dependence")]
    fn zero_dependence_rejected() {
        let _ = DependenceMatrix::from_columns(&[&[1, 0], &[0, 0]]);
    }

    #[test]
    fn unit_range_detection() {
        let d = DependenceMatrix::from_columns(&[&[2, 0], &[0, 1]]);
        assert!(!d.entries_in_unit_range());
    }

    #[test]
    fn display_is_matrix_form() {
        let d = DependenceMatrix::from_columns(&[&[1, 0], &[0, 1]]);
        assert_eq!(d.to_string(), "[1 0]\n[0 1]");
    }
}
