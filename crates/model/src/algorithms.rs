//! The paper's workload library.
//!
//! Every algorithm the paper uses or motivates, as a structural `(J, D)`
//! pair:
//!
//! * [`matmul`] — Example 3.1 / Equation 3.4 (word-level matrix product).
//! * [`transitive_closure`] — Example 3.2 / Equation 3.6 (reindexed
//!   transitive closure of [17]/[23]).
//! * [`convolution`] — the 2-D convolution kernel (intro motivation).
//! * [`lu_decomposition`] — the LU kernel (intro motivation).
//! * [`bitlevel_matmul`] — a 5-D bit-level matrix product in the style the
//!   RAB tool [26] produces (see the substitution note below).
//! * [`bitlevel_convolution`] — a 4-D bit-level convolution, the paper's
//!   "mapping of 4-dimensional convolution algorithm at bit-level into a
//!   2-dimensional systolic array" use case (Section 3).
//! * [`example_2_1`] — the 4-D index set of Example 2.1.
//!
//! **Substitution note (bit-level kernels).** The paper relies on RAB [26]
//! to expand C programs into bit-level uniform dependence algorithms but
//! never prints the expanded dependence matrices. We construct bit-level
//! kernels with the dependence structure of bit-serial arithmetic: the
//! word-level dependencies extended into the bit axes, plus a carry-ripple
//! dependence between adjacent bit positions. Any 4-/5-dimensional uniform
//! dependence structure exercises exactly the same mapping machinery
//! (Theorems 4.7/4.8, Proposition 8.1), which is all the paper's
//! experiments need. Documented in `DESIGN.md` §5.

use crate::algorithm::Uda;
use crate::dependence::DependenceMatrix;
use crate::index_set::IndexSet;

/// Word-level matrix multiplication `C = A·B` (Example 3.1).
///
/// `n = 3`, `J = {0 ≤ j ≤ μ}³`, `D = I₃` (Equation 3.4): `d̄₁`, `d̄₂`, `d̄₃`
/// are induced by `B`, `A` and `C` respectively — computation
/// `c_{j₁j₂} += a_{j₁j₃}·b_{j₃j₂}` at `j̄ = [j₁, j₂, j₃]ᵀ`.
pub fn matmul(mu: i64) -> Uda {
    Uda::new(
        format!("matmul(μ={mu})"),
        IndexSet::cube(3, mu),
        DependenceMatrix::from_columns(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]),
    )
}

/// Reindexed transitive closure (Example 3.2 / Equation 3.6, from
/// [17]/[22]/[23]).
///
/// `n = 3`, `J = {0 ≤ j ≤ μ}³`,
/// `D = [[0,0,1,1,1], [0,1,−1,−1,0], [1,0,−1,0,−1]]` (columns are the five
/// dependence vectors).
pub fn transitive_closure(mu: i64) -> Uda {
    Uda::new(
        format!("transitive-closure(μ={mu})"),
        IndexSet::cube(3, mu),
        DependenceMatrix::from_columns(&[
            &[0, 0, 1],
            &[0, 1, 0],
            &[1, -1, -1],
            &[1, -1, 0],
            &[1, 0, -1],
        ]),
    )
}

/// 1-D convolution `y_i = Σ_j w_j·x_{i−j}` as a 2-D uniform dependence
/// algorithm.
///
/// Loop nest: `for i in 0..=μ_y { for j in 0..=μ_w { y[i] += w[j]·x[i−j] } }`
/// with index point `[i, j]ᵀ`. Dependencies: the running sum `y`
/// accumulates along `j` (`[0, 1]ᵀ`), the weight `w_j` is reused along `i`
/// (`[1, 0]ᵀ`), and the sample `x_{i−j}` is reused along the diagonal
/// (`[1, 1]ᵀ`).
pub fn convolution(mu_out: i64, mu_weights: i64) -> Uda {
    Uda::new(
        format!("convolution(μ_y={mu_out}, μ_w={mu_weights})"),
        IndexSet::new(&[mu_out, mu_weights]),
        DependenceMatrix::from_columns(&[&[0, 1], &[1, 0], &[1, 1]]),
    )
}

/// LU decomposition as a 3-D uniform dependence algorithm (uniformized
/// Gaussian elimination, one of the paper's motivating bit-level-able
/// kernels).
///
/// Loop nest `for k { for i { for j { a[i][j] −= l[i][k]·u[k][j] } } }`
/// with index `[k, i, j]ᵀ`: the pivot row `u` propagates down `i`
/// (`[0, 1, 0]ᵀ`), the multiplier column `l` propagates across `j`
/// (`[0, 0, 1]ᵀ`), and the updated matrix value feeds step `k+1`
/// (`[1, 0, 0]ᵀ`).
pub fn lu_decomposition(mu: i64) -> Uda {
    Uda::new(
        format!("lu-decomposition(μ={mu})"),
        IndexSet::cube(3, mu),
        DependenceMatrix::from_columns(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]),
    )
}

/// 5-D bit-level matrix multiplication (RAB-style expansion; see module
/// docs for the substitution rationale).
///
/// Axes: `[j₁, j₂, j₃, b, p]ᵀ` = (row, column, reduction, multiplier bit,
/// bit position). `0 ≤ j₁,j₂,j₃ ≤ μ_w` (word loops), `0 ≤ b,p ≤ μ_b` (bit
/// loops). Dependencies:
///
/// * word-level `A`/`B`/`C` reuse: `e₁`, `e₂`, `e₃`;
/// * bit-serial partial-product accumulation along the multiplier bit
///   axis: `e₄`;
/// * carry ripple from bit position `p−1` into `p` within one addition
///   step: `e₅`;
/// * shifted partial product: bit `p` of step `b` consumes bit `p−1` of
///   step `b−1` (the ×2 shift of long multiplication): `[0,0,0,1,1]ᵀ`.
pub fn bitlevel_matmul(mu_word: i64, mu_bit: i64) -> Uda {
    Uda::new(
        format!("bitlevel-matmul(μ_w={mu_word}, μ_b={mu_bit})"),
        IndexSet::new(&[mu_word, mu_word, mu_word, mu_bit, mu_bit]),
        DependenceMatrix::from_columns(&[
            &[1, 0, 0, 0, 0],
            &[0, 1, 0, 0, 0],
            &[0, 0, 1, 0, 0],
            &[0, 0, 0, 1, 0],
            &[0, 0, 0, 0, 1],
            &[0, 0, 0, 1, 1],
        ]),
    )
}

/// 4-D bit-level convolution (the paper's Section 3 use case: map a 4-D
/// bit-level convolution into a 2-D systolic array).
///
/// Axes: `[i, j, b, p]ᵀ` = (output, tap, multiplier bit, bit position),
/// word loops bounded by `μ_w`, bit loops by `μ_b`. Dependencies are the
/// word-level convolution structure (`y` along `j`, `w` along `i`, `x`
/// along the diagonal) extended with the bit-serial accumulate and carry
/// chains of [`bitlevel_matmul`].
pub fn bitlevel_convolution(mu_word: i64, mu_bit: i64) -> Uda {
    Uda::new(
        format!("bitlevel-convolution(μ_w={mu_word}, μ_b={mu_bit})"),
        IndexSet::new(&[mu_word, mu_word, mu_bit, mu_bit]),
        DependenceMatrix::from_columns(&[
            &[0, 1, 0, 0],
            &[1, 0, 0, 0],
            &[1, 1, 0, 0],
            &[0, 0, 1, 0],
            &[0, 0, 0, 1],
            &[0, 0, 1, 1],
        ]),
    )
}

/// The 4-D algorithm of Example 2.1: `J = {0 ≤ j_i ≤ 6}⁴`.
///
/// Example 2.1 exercises only the index set (its mapping matrix is given
/// directly); the paper does not state `D`, so the identity dependence
/// structure is supplied — it admits every positive schedule, leaving the
/// conflict analysis (the point of the example) unaffected.
pub fn example_2_1() -> Uda {
    Uda::new(
        "example-2.1",
        IndexSet::cube(4, 6),
        DependenceMatrix::from_columns(&[
            &[1, 0, 0, 0],
            &[0, 1, 0, 0],
            &[0, 0, 1, 0],
            &[0, 0, 0, 1],
        ]),
    )
}

/// 2-D successive over-relaxation / Gauss–Seidel sweep: at `[t, i]ᵀ` the
/// cell updates `x_i` from its own previous iterate (`[1, 0]ᵀ`), its left
/// neighbour's *current* iterate (`[0, 1]ᵀ`) and its right neighbour's
/// previous iterate (`[1, −1]ᵀ`) — the classic skewed-stencil UDA used
/// throughout the systolic literature.
pub fn sor(iterations: i64, points: i64) -> Uda {
    Uda::new(
        format!("sor(T={iterations}, N={points})"),
        IndexSet::new(&[iterations, points]),
        DependenceMatrix::from_columns(&[&[1, 0], &[0, 1], &[1, -1]]),
    )
}

/// Banded matrix–vector product `y = A·x` as a 2-D UDA: `[i, j]ᵀ`
/// accumulates `y_i += a_{ij}·x_j` along `j` (`[0, 1]ᵀ`) while `x_j`
/// streams across rows (`[1, 0]ᵀ`).
pub fn matvec(rows: i64, cols: i64) -> Uda {
    Uda::new(
        format!("matvec({rows}×{cols})"),
        IndexSet::new(&[rows, cols]),
        DependenceMatrix::from_columns(&[&[0, 1], &[1, 0]]),
    )
}

/// 5-D bit-level LU decomposition (the other kernel the paper names as a
/// frequent RAB mapping target, Section 4 after Theorem 4.7). Word-level
/// LU structure (`e₁, e₂, e₃`) extended with the bit-serial accumulate
/// (`e₄`), carry (`e₅`) and shifted-partial-product (`e₄+e₅`) chains of
/// [`bitlevel_matmul`].
pub fn bitlevel_lu(mu_word: i64, mu_bit: i64) -> Uda {
    Uda::new(
        format!("bitlevel-lu(μ_w={mu_word}, μ_b={mu_bit})"),
        IndexSet::new(&[mu_word, mu_word, mu_word, mu_bit, mu_bit]),
        DependenceMatrix::from_columns(&[
            &[1, 0, 0, 0, 0],
            &[0, 1, 0, 0, 0],
            &[0, 0, 1, 0, 0],
            &[0, 0, 0, 1, 0],
            &[0, 0, 0, 0, 1],
            &[0, 0, 0, 1, 1],
        ]),
    )
}

/// An `n`-dimensional cube algorithm with identity dependencies — the
/// simplest UDA of each dimension, used by property tests and scaling
/// benches.
pub fn identity_cube(n: usize, mu: i64) -> Uda {
    let cols: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| i64::from(i == j)).collect())
        .collect();
    let col_refs: Vec<&[i64]> = cols.iter().map(Vec::as_slice).collect();
    Uda::new(
        format!("identity-cube(n={n}, μ={mu})"),
        IndexSet::cube(n, mu),
        DependenceMatrix::from_columns(&col_refs),
    )
}

/// Every library algorithm at a small representative size, for exhaustive
/// integration sweeps.
pub fn all_small() -> Vec<Uda> {
    vec![
        matmul(4),
        transitive_closure(4),
        convolution(5, 3),
        lu_decomposition(4),
        bitlevel_matmul(2, 3),
        bitlevel_convolution(3, 3),
        bitlevel_lu(2, 3),
        sor(4, 4),
        matvec(4, 4),
        example_2_1(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::LinearSchedule;

    #[test]
    fn matmul_matches_paper_eq_3_4() {
        let a = matmul(4);
        assert_eq!(a.dim(), 3);
        assert_eq!(a.num_deps(), 3);
        assert_eq!(a.index_set.mu(), &[4, 4, 4]);
        assert_eq!(a.deps.as_mat(), &cfmap_intlin::IMat::identity(3));
    }

    #[test]
    fn transitive_closure_matches_paper_eq_3_6() {
        let a = transitive_closure(4);
        assert_eq!(a.dim(), 3);
        assert_eq!(a.num_deps(), 5);
        let d = a.deps.as_mat().to_i64_rows().unwrap();
        assert_eq!(d[0], vec![0, 0, 1, 1, 1]);
        assert_eq!(d[1], vec![0, 1, -1, -1, 0]);
        assert_eq!(d[2], vec![1, 0, -1, 0, -1]);
    }

    #[test]
    fn all_algorithms_admit_a_valid_schedule() {
        // Every library algorithm must be schedulable (acyclic): exhibit a
        // concrete witness Π with ΠD > 0.
        let witnesses: Vec<(Uda, Vec<i64>)> = vec![
            (matmul(3), vec![1, 1, 1]),
            (transitive_closure(3), vec![3, 1, 1]),
            (convolution(4, 3), vec![1, 1]),
            (lu_decomposition(3), vec![1, 1, 1]),
            (bitlevel_matmul(2, 2), vec![1, 1, 1, 1, 1]),
            (bitlevel_convolution(2, 2), vec![1, 1, 1, 1]),
            (example_2_1(), vec![1, 1, 1, 1]),
        ];
        for (alg, pi) in witnesses {
            let sched = LinearSchedule::new(&pi);
            assert!(
                sched.is_valid_for(&alg.deps),
                "no valid witness schedule for {}",
                alg.name
            );
            assert!(!alg.has_antiparallel_dependence_pair(), "{}", alg.name);
        }
    }

    #[test]
    fn dimensions_match_paper_claims() {
        // "Many bit level algorithms are four or five dimensional."
        assert_eq!(bitlevel_matmul(2, 3).dim(), 5);
        assert_eq!(bitlevel_convolution(3, 3).dim(), 4);
    }

    #[test]
    fn unit_range_coefficients_for_lp_conversion() {
        // Section 5: the ILP→LP conversion needs D entries in {−1,0,1}.
        for alg in all_small() {
            assert!(
                alg.deps.entries_in_unit_range(),
                "{} has non-unit dependence entries",
                alg.name
            );
        }
    }

    #[test]
    fn identity_cube_generic() {
        let a = identity_cube(6, 2);
        assert_eq!(a.dim(), 6);
        assert_eq!(a.num_deps(), 6);
        assert_eq!(a.num_computations(), 3u128.pow(6));
    }

    #[test]
    fn all_small_is_complete() {
        assert_eq!(all_small().len(), 10);
        let names: Vec<String> = all_small().iter().map(|a| a.name.clone()).collect();
        assert!(names.iter().any(|n| n.contains("matmul")));
        assert!(names.iter().any(|n| n.contains("transitive")));
        assert!(names.iter().any(|n| n.contains("lu")));
        assert!(names.iter().any(|n| n.contains("sor")));
    }

    #[test]
    fn sor_and_matvec_schedulable() {
        let sor_alg = sor(4, 4);
        // Π = [2, 1]: Πd = (2, 1, 1) > 0.
        assert!(LinearSchedule::new(&[2, 1]).is_valid_for(&sor_alg.deps));
        assert!(!LinearSchedule::new(&[1, 1]).is_valid_for(&sor_alg.deps)); // d₃ gives 0
        let mv = matvec(4, 4);
        assert!(LinearSchedule::new(&[1, 1]).is_valid_for(&mv.deps));
    }

    #[test]
    fn bitlevel_lu_is_five_dimensional() {
        let alg = bitlevel_lu(2, 3);
        assert_eq!(alg.dim(), 5);
        assert_eq!(alg.num_deps(), 6);
        assert!(LinearSchedule::new(&[1, 1, 1, 1, 1]).is_valid_for(&alg.deps));
    }
}
