//! Absolute lower bounds on execution time.
//!
//! The paper's optimality claims are relative to a *fixed space map*; these
//! bounds are mapping-independent and let the harness report how close a
//! design is to the physics of the problem:
//!
//! * [`critical_path`] — the longest dependence chain in `(J, D)`. No
//!   schedule of any kind (linear or not) can finish in fewer cycles.
//! * [`pigeonhole_bound`] — `⌈|J| / #PEs⌉`: with `p` processors and one
//!   computation per PE per cycle, `|J|` computations need at least this
//!   many cycles.
//! * [`linear_schedule_bound`] — the best `t = 1 + Σ|π_i|μ_i` over valid
//!   schedules *ignoring conflicts*: the cost of linearity alone, found by
//!   the same weighted enumeration Procedure 5.1 uses but stopping at the
//!   first `ΠD > 0` candidate.

use crate::algorithm::Uda;
use crate::schedule::LinearSchedule;
use std::collections::HashMap;

/// Length (in computations) of the longest dependence chain in `J` —
/// computed by dynamic programming over the index set in any topological
/// (here: dependence-consistent lexicographic-by-level) order.
///
/// Cost `O(|J|·m)`; intended for the small-to-moderate index sets the
/// experiments use.
pub fn critical_path(alg: &Uda) -> i64 {
    // Process points in order of a valid schedule to guarantee
    // predecessors are finalized first. Any positive combination of the
    // dependence columns works when D admits one; fall back to iterating
    // by chain relaxation if not.
    let mut depth: HashMap<Vec<i64>, i64> = HashMap::new();
    // Order points by a valid linear schedule if one is cheap to find.
    let order = match find_positive_schedule(alg) {
        Some(pi) => {
            let mut pts: Vec<Vec<i64>> = alg.index_set.iter().collect();
            pts.sort_by_key(|j| pi.time_of(j));
            pts
        }
        None => {
            // Fixed-point relaxation (dependence graph is acyclic for
            // schedulable algorithms; this handles the rest defensively).
            return critical_path_by_relaxation(alg);
        }
    };
    let mut max_depth = 0;
    for j in order {
        let d = 1 + alg
            .predecessors(&j)
            .into_iter()
            .map(|(_, p)| depth.get(&p).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        max_depth = max_depth.max(d);
        depth.insert(j, d);
    }
    max_depth
}

fn critical_path_by_relaxation(alg: &Uda) -> i64 {
    let mut depth: HashMap<Vec<i64>, i64> = alg.index_set.iter().map(|j| (j, 1)).collect();
    // At most |J| rounds; cycles would not terminate, so cap and panic.
    let cap = alg.num_computations().min(1 << 20) as usize + 1;
    for round in 0..=cap {
        let mut changed = false;
        for j in alg.index_set.iter() {
            let d = 1 + alg
                .predecessors(&j)
                .into_iter()
                .map(|(_, p)| depth[&p])
                .max()
                .unwrap_or(0);
            if d > depth[&j] {
                depth.insert(j, d);
                changed = true;
            }
        }
        if !changed {
            return depth.values().copied().max().unwrap_or(0);
        }
        assert!(round < cap, "dependence graph has a cycle");
    }
    unreachable!()
}

/// A positive-combination schedule witness, if one exists with entries in
/// a small box (sufficient for every library algorithm).
fn find_positive_schedule(alg: &Uda) -> Option<LinearSchedule> {
    let n = alg.dim();
    // Try vectors with entries 1..=n+2 in a few canonical shapes.
    let mut candidates: Vec<Vec<i64>> = vec![vec![1; n]];
    for big in 2..=(n as i64 + 3) {
        for axis in 0..n {
            let mut v = vec![1i64; n];
            v[axis] = big;
            candidates.push(v);
        }
        candidates.push((0..n).map(|i| 1 + (i as i64) * (big - 1)).collect());
        candidates.push((0..n).rev().map(|i| 1 + (i as i64) * (big - 1)).collect());
    }
    candidates
        .into_iter()
        .map(|v| LinearSchedule::new(&v))
        .find(|pi| pi.is_valid_for(&alg.deps))
}

/// `⌈|J| / processors⌉` — the throughput lower bound.
pub fn pigeonhole_bound(alg: &Uda, processors: usize) -> i64 {
    assert!(processors > 0, "need at least one processor");
    let points = alg.num_computations();
    points.div_ceil(processors as u128) as i64
}

/// The minimum `t = 1 + Σ|π_i|μ_i` over schedules with `ΠD > 0`,
/// ignoring conflict-freedom — what linearity alone costs. `None` if no
/// valid schedule exists below the cap.
pub fn linear_schedule_bound(alg: &Uda, max_objective: i64) -> Option<i64> {
    let mu = alg.index_set.mu();
    let n = alg.dim();
    for cost in 1..=max_objective {
        let mut found = false;
        enumerate_weighted_local(n, mu, cost, &mut |pi| {
            if !found && LinearSchedule::new(pi).is_valid_for(&alg.deps) {
                found = true;
            }
        });
        if found {
            return Some(cost + 1);
        }
    }
    None
}

// A local copy of the weighted enumerator (the search lives in
// `cfmap-core`, which depends on this crate; duplicating ~20 lines beats
// a dependency inversion).
fn enumerate_weighted_local(n: usize, mu: &[i64], cost: i64, f: &mut impl FnMut(&[i64])) {
    fn rec(i: usize, remaining: i64, n: usize, mu: &[i64], pi: &mut Vec<i64>, f: &mut impl FnMut(&[i64])) {
        if i == n {
            if remaining == 0 {
                f(pi);
            }
            return;
        }
        let w = mu[i];
        let max_abs = if w == 0 { remaining } else { remaining / w };
        for a in 0..=max_abs {
            let used = if w == 0 { 0 } else { a * w };
            pi[i] = a;
            rec(i + 1, remaining - used, n, mu, pi, f);
            if a != 0 {
                pi[i] = -a;
                rec(i + 1, remaining - used, n, mu, pi, f);
            }
        }
        pi[i] = 0;
    }
    let mut pi = vec![0i64; n];
    rec(0, cost, n, mu, &mut pi, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;

    #[test]
    fn matmul_critical_path() {
        // Chain: each axis must advance μ times ⇒ depth 3μ + 1.
        for mu in 2..=4 {
            let alg = algorithms::matmul(mu);
            assert_eq!(critical_path(&alg), 3 * mu + 1, "μ = {mu}");
        }
    }

    #[test]
    fn convolution_critical_path() {
        // Deps [0,1],[1,0],[1,1]: longest chain uses the diagonal —
        // from (0,0) to (μy, μw) via mixed steps: depth μy + μw + 1.
        let alg = algorithms::convolution(4, 3);
        assert_eq!(critical_path(&alg), 8);
    }

    #[test]
    fn transitive_closure_critical_path_via_relaxation_agrees() {
        let alg = algorithms::transitive_closure(3);
        let fast = critical_path(&alg);
        let slow = critical_path_by_relaxation(&alg);
        assert_eq!(fast, slow);
        assert!(fast >= 4); // at least a full axis traversal
    }

    #[test]
    fn pigeonhole() {
        let alg = algorithms::matmul(4); // |J| = 125
        assert_eq!(pigeonhole_bound(&alg, 13), 10);
        assert_eq!(pigeonhole_bound(&alg, 125), 1);
        assert_eq!(pigeonhole_bound(&alg, 1), 125);
    }

    #[test]
    fn linear_bound_below_conflict_free_optimum() {
        // Ignoring conflicts, matmul μ=4 admits Π = [1,1,1] ⇒ t = 13 —
        // strictly below the conflict-free optimum 25.
        let alg = algorithms::matmul(4);
        assert_eq!(linear_schedule_bound(&alg, 40), Some(13));
    }

    #[test]
    fn linear_bound_respects_dependencies() {
        // TC needs π1 > π2 + π3 ⇒ minimum objective is μ(1+1+3) = ...
        // compute: cheapest valid Π = [3,1,1] ⇒ t = 1 + 4(3+1+1) = 21.
        let alg = algorithms::transitive_closure(4);
        assert_eq!(linear_schedule_bound(&alg, 60), Some(21));
    }

    #[test]
    fn bounds_sandwich_the_optimum() {
        // critical path ≤ linear bound ≤ conflict-free optimum (25).
        let alg = algorithms::matmul(4);
        let cp = critical_path(&alg);
        let lin = linear_schedule_bound(&alg, 40).unwrap();
        assert!(cp <= lin);
        assert!(lin <= 25);
    }
}
