//! Property tests for the cfmapd wire format: `parse(serialize(x)) == x`
//! for generated JSON documents, requests, responses, and — variant by
//! variant — every [`CfmapError`].

use cfmap_core::{BudgetLimit, Certification, CfmapError};
use cfmap_service::json::{parse, Json};
use cfmap_service::wire::{
    MapOutcome, MapRequest, MapResponse, ParetoOutcome, ParetoPointWire, ParetoRequest,
    ParetoResponse, RouterReject, RouterRejectKind,
};
use std::str::FromStr;

/// Characters exercised in generated strings: escapes, quotes, non-ASCII
/// (including an astral-plane scalar that needs a surrogate pair), and
/// whitespace controls.
const PALETTE: &[char] =
    &['a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\r', 'µ', 'Π', '✓', '𝕁', '{', '['];

fn string_from(tokens: &[i64]) -> String {
    tokens.iter().map(|&t| PALETTE[t.rem_euclid(PALETTE.len() as i64) as usize]).collect()
}

/// Deterministically build a JSON document from an integer token stream.
fn build_json(tokens: &mut std::slice::Iter<'_, i64>, depth: usize) -> Json {
    let t = tokens.next().copied().unwrap_or(0).rem_euclid(6);
    // At the depth floor, only emit scalars.
    match if depth == 0 { t.min(3) } else { t } {
        0 => Json::Null,
        1 => Json::Bool(tokens.next().copied().unwrap_or(0) % 2 == 0),
        2 => {
            let v = tokens.next().copied().unwrap_or(0);
            // Mix small values with extremes.
            Json::Int(match v.rem_euclid(5) {
                0 => i64::MIN,
                1 => i64::MAX,
                _ => v.wrapping_mul(9_973),
            })
        }
        3 => {
            let len = tokens.next().copied().unwrap_or(0).rem_euclid(6) as usize;
            let chunk: Vec<i64> = tokens.by_ref().take(len).copied().collect();
            Json::Str(string_from(&chunk))
        }
        4 => {
            let len = tokens.next().copied().unwrap_or(0).rem_euclid(4) as usize;
            Json::Arr((0..len).map(|_| build_json(tokens, depth - 1)).collect())
        }
        _ => {
            let len = tokens.next().copied().unwrap_or(0).rem_euclid(4) as usize;
            let mut fields = Vec::new();
            let mut used = std::collections::HashSet::new();
            for i in 0..len {
                let klen = tokens.next().copied().unwrap_or(0).rem_euclid(5) as usize;
                let chunk: Vec<i64> = tokens.by_ref().take(klen).copied().collect();
                let mut key = string_from(&chunk);
                if !used.insert(key.clone()) {
                    key.push_str(&format!("#{i}"));
                    used.insert(key.clone());
                }
                fields.push((key, build_json(tokens, depth - 1)));
            }
            Json::Obj(fields)
        }
    }
}

cfmap_testkit::props! {
    cases = 192;

    /// Arbitrary JSON documents survive a serialize → parse round trip.
    fn json_documents_round_trip(tokens in cfmap_testkit::gen::vec(i64::MIN..=i64::MAX, 1..64)) {
        let doc = build_json(&mut tokens.iter(), 4);
        let text = doc.serialize();
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse of {text} failed: {e}"));
        assert_eq!(back, doc, "round trip of {text}");
    }

    /// Requests round-trip with any combination of optional knobs.
    fn requests_round_trip(
        mu in cfmap_testkit::gen::vec(1i64..=9, 1..5),
        dep_entries in cfmap_testkit::gen::vec(-3i64..=3, 1..5),
        space_entries in cfmap_testkit::gen::vec(-2i64..=2, 1..5),
        knobs in cfmap_testkit::gen::vec(0i64..=1, 4..5),
        named in cfmap_testkit::gen::bools(),
    ) {
        let n = mu.len();
        let req = MapRequest {
            algorithm: if named { Some("matmul".into()) } else { None },
            mu: if named { vec![4] } else { mu.clone() },
            deps: if named {
                None
            } else {
                Some(vec![dep_entries.iter().cycle().take(n).copied().collect()])
            },
            space: vec![space_entries.iter().cycle().take(n).copied().collect()],
            cap: (knobs[0] == 1).then_some(42),
            max_candidates: (knobs[1] == 1).then_some(1_000),
            timeout_ms: (knobs[2] == 1).then_some(250),
            deadline_ms: (knobs[3] == 1).then_some(750),
        };
        let text = req.to_json().serialize();
        assert_eq!(MapRequest::from_str(&text).unwrap(), req, "{text}");
    }

    /// Every CfmapError variant round-trips through the error response,
    /// with generated payloads (including hostile strings).
    fn error_variants_round_trip(
        kind in 0i64..=11,
        a in 0i64..=1_000_000,
        b in 0i64..=1_000_000,
        sched in cfmap_testkit::gen::vec(-99i64..=99, 1..6),
        text_tokens in cfmap_testkit::gen::vec(i64::MIN..=i64::MAX, 0..10),
    ) {
        let text = string_from(&text_tokens);
        let err = match kind {
            0 => CfmapError::RankDeficient { expected: a as usize, actual: b as usize },
            1 => CfmapError::InvalidSchedule { schedule: sched.clone(), reason: text.clone() },
            2 => CfmapError::Unroutable { dependence: a as usize, reason: text.clone() },
            3 => CfmapError::Overflow { context: text.clone() },
            4 => CfmapError::BudgetExhausted {
                limit: BudgetLimit::Candidates,
                candidates_examined: a as u64,
            },
            5 => CfmapError::BudgetExhausted {
                limit: BudgetLimit::Nodes,
                candidates_examined: b as u64,
            },
            6 => CfmapError::BudgetExhausted {
                limit: BudgetLimit::WallClock,
                candidates_examined: a as u64,
            },
            7 => CfmapError::BudgetExhausted {
                limit: BudgetLimit::Deadline,
                candidates_examined: b as u64,
            },
            8 => CfmapError::BudgetExhausted {
                limit: BudgetLimit::Cancelled,
                candidates_examined: a as u64,
            },
            9 => CfmapError::DimensionMismatch {
                context: text.clone(),
                expected: a as usize,
                actual: b as usize,
            },
            10 => CfmapError::SnapshotMismatch {
                field: text.clone(),
                expected: format!("{a:016x}"),
                actual: format!("{b:016x}"),
            },
            _ => CfmapError::Unsupported { reason: text.clone() },
        };
        let resp = MapResponse::Error(err);
        let body = resp.to_json().serialize();
        assert_eq!(MapResponse::from_str(&body).unwrap(), resp, "{body}");
        assert_eq!(resp.exit_class(), 3);
    }

    /// Router rejections round-trip kind by kind with hostile message
    /// strings, and stay disjoint from the backend's `MapResponse`
    /// namespace in both directions.
    fn router_rejects_round_trip(
        kind_tok in 0i64..=3,
        attempted in 0i64..=1_000_000,
        text_tokens in cfmap_testkit::gen::vec(i64::MIN..=i64::MAX, 0..10),
    ) {
        let kind = match kind_tok {
            0 => RouterRejectKind::NoBackends,
            1 => RouterRejectKind::AllCircuitsOpen,
            2 => RouterRejectKind::UpstreamUnreachable,
            _ => RouterRejectKind::FailoverExhausted,
        };
        let reject = RouterReject {
            kind,
            message: string_from(&text_tokens),
            attempted: attempted as u64,
        };
        let body = reject.to_json().serialize();
        assert_eq!(RouterReject::from_str(&body).unwrap(), reject, "{body}");
        // The status taxonomy is total: 503s are the retry-later kinds,
        // 502s the upstream-transport kinds.
        let expected = matches!(
            kind,
            RouterRejectKind::NoBackends | RouterRejectKind::AllCircuitsOpen
        );
        assert_eq!(reject.kind.http_status() == 503, expected);
        // Cross-namespace confusion must fail loudly, both ways.
        assert!(MapResponse::from_str(&body).is_err(), "{body}");
        let backend_body =
            MapResponse::Infeasible { candidates_examined: 7 }.to_json().serialize();
        assert!(RouterReject::from_str(&backend_body).is_err(), "{backend_body}");
        // Malformed rejections (wrong status, unknown kind) are refused.
        let mut wrong_status = reject.to_json();
        if let Json::Obj(fields) = &mut wrong_status {
            fields[0].1 = Json::Str("ok".into());
        }
        assert!(RouterReject::from_json(&wrong_status).is_err());
        let mut bad_kind = reject.to_json();
        if let Json::Obj(fields) = &mut bad_kind {
            fields[1].1 = Json::Str("slow_tuesday".into());
        }
        assert!(RouterReject::from_json(&bad_kind).is_err());
    }

    /// Pareto requests round-trip with every scope (joint, fixed-space,
    /// fixed-schedule) and any combination of knobs and budgets.
    fn pareto_requests_round_trip(
        mu in cfmap_testkit::gen::vec(1i64..=9, 1..5),
        dep_entries in cfmap_testkit::gen::vec(-3i64..=3, 1..5),
        pin_entries in cfmap_testkit::gen::vec(-2i64..=2, 1..5),
        knobs in cfmap_testkit::gen::vec(0i64..=1, 6..7),
        scope in 0i64..=2,
        named in cfmap_testkit::gen::bools(),
    ) {
        let n = mu.len();
        let pin: Vec<i64> = pin_entries.iter().cycle().take(n).copied().collect();
        let req = ParetoRequest {
            algorithm: if named { Some("matmul".into()) } else { None },
            mu: if named { vec![4] } else { mu.clone() },
            deps: if named {
                None
            } else {
                Some(vec![dep_entries.iter().cycle().take(n).copied().collect()])
            },
            space: (scope == 1).then(|| vec![pin.clone()]),
            schedule: (scope == 2).then(|| pin.clone()),
            cap: (knobs[0] == 1).then_some(42),
            entry_bound: (knobs[1] == 1).then_some(3),
            include_bandwidth: knobs[2] == 1,
            max_processors: (knobs[3] == 1).then_some(64),
            max_wires: (knobs[4] == 1).then_some(128),
            max_bandwidth: (knobs[5] == 1).then_some(4),
        };
        let text = req.to_json().serialize();
        assert_eq!(ParetoRequest::from_str(&text).unwrap(), req, "{text}");
    }

    /// Pareto responses round-trip: frontiers with and without the
    /// bandwidth axis (empty frontiers included — they are `ok`, not an
    /// error), bad_request with hostile strings, and structured errors.
    fn pareto_responses_round_trip(
        variant in 0i64..=2,
        rows in cfmap_testkit::gen::vec(-9i64..=9, 1..6),
        npoints in 0i64..=4,
        counts in cfmap_testkit::gen::vec(0i64..=1_000_000, 2..3),
        with_bw in cfmap_testkit::gen::bools(),
        cached in cfmap_testkit::gen::bools(),
        text_tokens in cfmap_testkit::gen::vec(i64::MIN..=i64::MAX, 0..10),
    ) {
        let resp = match variant {
            0 => {
                let points: Vec<ParetoPointWire> = (0..npoints)
                    .map(|i| ParetoPointWire {
                        space: vec![rows.clone()],
                        schedule: rows.iter().map(|&v| v + i).collect(),
                        total_time: 1 + i * 7,
                        processors: (i as u64 + 1) * 3,
                        wires: 10 - i,
                        bandwidth: with_bw.then_some(i as u64 + 1),
                    })
                    .collect();
                ParetoResponse::Ok(ParetoOutcome {
                    frontier_size: points.len() as u64,
                    points,
                    dominated_pruned: counts[0] as u64,
                    candidates_examined: counts[1] as u64,
                    cached,
                    verified: true,
                })
            }
            1 => ParetoResponse::BadRequest { msg: string_from(&text_tokens) },
            _ => ParetoResponse::Error(CfmapError::Overflow {
                context: string_from(&text_tokens),
            }),
        };
        let body = resp.to_json().serialize();
        assert_eq!(ParetoResponse::from_str(&body).unwrap(), resp, "{body}");
        let expected_class = match &resp {
            ParetoResponse::Ok(_) => 0,
            ParetoResponse::BadRequest { .. } => 2,
            ParetoResponse::Error(_) => 3,
        };
        assert_eq!(resp.exit_class(), expected_class);
        let expected_status = match &resp {
            ParetoResponse::Ok(_) => 200,
            ParetoResponse::BadRequest { .. } => 400,
            ParetoResponse::Error(_) => 422,
        };
        assert_eq!(resp.http_status(), expected_status);
        // A frontier body is not a MapResponse: the `ok` shapes differ.
        if matches!(resp, ParetoResponse::Ok(_)) {
            assert!(MapResponse::from_str(&body).is_err(), "{body}");
        }
    }

    /// Success / infeasible responses round-trip for every certification.
    fn outcomes_round_trip(
        schedule in cfmap_testkit::gen::vec(-50i64..=50, 1..6),
        objective in 0i64..=100_000,
        examined in 0i64..=1_000_000,
        cert_kind in 0i64..=2,
        cached in cfmap_testkit::gen::bools(),
    ) {
        let resp = if cert_kind == 2 {
            MapResponse::Infeasible { candidates_examined: examined as u64 }
        } else {
            MapResponse::Ok(MapOutcome {
                schedule: schedule.clone(),
                objective,
                total_time: objective + 1,
                certification: if cert_kind == 0 {
                    Certification::Optimal
                } else {
                    Certification::BestEffort { candidates_examined: examined as u64 }
                },
                candidates_examined: examined as u64,
                cached,
                processors: (objective as u64).max(1),
                array_dims: 1 + (objective as u64 % 3),
            })
        };
        let body = resp.to_json().serialize();
        assert_eq!(MapResponse::from_str(&body).unwrap(), resp, "{body}");
    }
}
