//! The daemon's schedule-family catalogue.
//!
//! Sits beside the design cache as a second, stronger warm-start tier:
//! where the cache answers "have I solved *this exact* problem before",
//! the family store answers "have I solved enough *sizes of this
//! problem* to know its closed form". Solved instances accumulate as
//! observations; once a family has [`cfmap_core::family::MIN_INSTANCES`]
//! distinct sizes, the background fitter tries to promote them to a
//! [`FamilyCertificate`] (affine-in-μ template, symbolically verified or
//! probe-checked — see [`cfmap_core::family`]). A certificate answers
//! every future size of the family by matrix fill-in plus one exact
//! conflict re-check — zero candidate enumeration — including sizes no
//! daemon in the fleet ever solved.
//!
//! Only [`Certification::Optimal`] runs of knob-free requests may become
//! observations; the engine enforces this at the observation point, so a
//! degraded (best-effort, budget-tripped, cancelled) answer can never
//! mint a certificate. Families that refuse to certify (non-affine,
//! refuted, probe mismatch) are remembered as rejected so the fitter
//! does not spin on them.

use cfmap_core::family::{
    certify, instantiate, CertifyError, FamilyCertificate, FamilyInstance, FamilyKey,
    InstantiatedDesign, MIN_INSTANCES,
};
use cfmap_core::CanonicalProblem;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// At most this many sizes are retained per family while it waits to be
/// fitted (the fitter needs [`MIN_INSTANCES`]; a few spares make the fit
/// more robust to odd first observations).
const MAX_OBSERVATIONS_PER_FAMILY: usize = 8;

/// At most this many distinct families are tracked as observations at
/// once; beyond that, new families are ignored until old ones resolve
/// (certified or rejected). Bounds memory against adversarial traffic.
const MAX_OBSERVED_FAMILIES: usize = 64;

/// Counters reported by [`FamilyStore::stats`] (and `/family`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FamilyStats {
    /// Requests answered from a certificate.
    pub hits: u64,
    /// Certificates currently held.
    pub certificates: u64,
    /// Families with observations awaiting a fit.
    pub observing: u64,
    /// Families rejected by the fitter (non-affine, refuted, or probe
    /// mismatch) and permanently skipped.
    pub rejected: u64,
    /// Fit attempts that produced a certificate.
    pub fit_certified: u64,
    /// Fit attempts that failed (any reason).
    pub fit_failed: u64,
}

struct Inner {
    observations: HashMap<FamilyKey, BTreeMap<i64, FamilyInstance>>,
    certificates: HashMap<FamilyKey, FamilyCertificate>,
    rejected: HashSet<FamilyKey>,
    /// Families currently being fitted (fit runs outside the lock).
    fitting: HashSet<FamilyKey>,
}

/// Concurrent store of observations and certificates.
pub struct FamilyStore {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    fit_certified: AtomicU64,
    fit_failed: AtomicU64,
}

impl Default for FamilyStore {
    fn default() -> FamilyStore {
        FamilyStore::new()
    }
}

impl FamilyStore {
    /// An empty store.
    pub fn new() -> FamilyStore {
        FamilyStore {
            inner: Mutex::new(Inner {
                observations: HashMap::new(),
                certificates: HashMap::new(),
                rejected: HashSet::new(),
                fitting: HashSet::new(),
            }),
            hits: AtomicU64::new(0),
            fit_certified: AtomicU64::new(0),
            fit_failed: AtomicU64::new(0),
        }
    }

    /// Answer a canonical problem from a certificate, if one covers it.
    /// The instantiation re-checks validity, rank, and conflict-freedom
    /// exactly for this μ (see [`cfmap_core::family::instantiate`]), so
    /// a hit is as trustworthy as a fresh solve.
    pub fn lookup(&self, problem: &CanonicalProblem) -> Option<InstantiatedDesign> {
        let (key, _) = FamilyKey::of(problem);
        let cert = {
            let inner = self.inner.lock().ok()?;
            inner.certificates.get(&key)?.clone()
        };
        let design = instantiate(&cert, problem)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(design)
    }

    /// Record a solver-proven optimal instance. The caller (the engine)
    /// must only pass knob-free, [`Certification::Optimal`] outcomes —
    /// this method additionally ignores families already certified,
    /// rejected, or over the tracking bounds.
    ///
    /// [`Certification::Optimal`]: cfmap_core::Certification::Optimal
    pub fn observe(&self, problem: &CanonicalProblem, schedule: Vec<i64>, objective: i64) {
        let (key, param) = FamilyKey::of(problem);
        let Ok(mut inner) = self.inner.lock() else { return };
        if inner.certificates.contains_key(&key) || inner.rejected.contains(&key) {
            return;
        }
        if !inner.observations.contains_key(&key)
            && inner.observations.len() >= MAX_OBSERVED_FAMILIES
        {
            return;
        }
        let obs = inner.observations.entry(key).or_default();
        if obs.len() >= MAX_OBSERVATIONS_PER_FAMILY && !obs.contains_key(&param) {
            return;
        }
        obs.insert(
            param,
            FamilyInstance { param, schedule, objective, total_time: objective + 1 },
        );
    }

    /// Run one fitting step: pick a family ready to fit (≥
    /// [`MIN_INSTANCES`] sizes, no certificate, not rejected, not being
    /// fitted by another thread), certify it — probe solves run *outside*
    /// the store lock — and record the result. Returns what happened, or
    /// `None` when no family is ready.
    pub fn fit_step(&self) -> Option<Result<FamilyKey, CertifyError>> {
        let (key, instances) = {
            let mut inner = self.inner.lock().ok()?;
            let key = inner
                .observations
                .iter()
                .filter(|(k, obs)| {
                    obs.len() >= MIN_INSTANCES
                        && !inner.certificates.contains_key(*k)
                        && !inner.rejected.contains(*k)
                        && !inner.fitting.contains(*k)
                })
                .map(|(k, _)| k.clone())
                // Deterministic pick: smallest key (FamilyKey is Ord).
                .min()?;
            inner.fitting.insert(key.clone());
            let instances: Vec<FamilyInstance> =
                inner.observations[&key].values().cloned().collect();
            (key, instances)
        };
        // Certification solves fresh probe instances — potentially
        // seconds of search — with no lock held.
        let result = certify(&key, &instances);
        if let Ok(mut inner) = self.inner.lock() {
            inner.fitting.remove(&key);
            match &result {
                Ok(cert) => {
                    inner.observations.remove(&key);
                    inner.certificates.insert(key.clone(), cert.clone());
                    self.fit_certified.fetch_add(1, Ordering::Relaxed);
                }
                // Not enough *distinct* sizes yet (duplicates collapsed):
                // keep observing, do not reject.
                Err(CertifyError::TooFewInstances { .. }) => {
                    self.fit_failed.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    inner.observations.remove(&key);
                    inner.rejected.insert(key.clone());
                    self.fit_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Some(result.map(|_| key))
    }

    /// Install a certificate directly (snapshot restore). Replaces any
    /// existing certificate for the family and clears its observations.
    pub fn install(&self, cert: FamilyCertificate) {
        if let Ok(mut inner) = self.inner.lock() {
            let key = cert.template.key.clone();
            inner.observations.remove(&key);
            inner.rejected.remove(&key);
            inner.certificates.insert(key, cert);
        }
    }

    /// Every certificate currently held (snapshot save, `/family`).
    pub fn certificates(&self) -> Vec<FamilyCertificate> {
        match self.inner.lock() {
            Ok(inner) => {
                let mut certs: Vec<FamilyCertificate> =
                    inner.certificates.values().cloned().collect();
                certs.sort_by(|a, b| a.template.key.cmp(&b.template.key));
                certs
            }
            Err(_) => Vec::new(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> FamilyStats {
        let (certificates, observing, rejected) = match self.inner.lock() {
            Ok(inner) => (
                inner.certificates.len() as u64,
                inner.observations.len() as u64,
                inner.rejected.len() as u64,
            ),
            Err(_) => (0, 0, 0),
        };
        FamilyStats {
            hits: self.hits.load(Ordering::Relaxed),
            certificates,
            observing,
            rejected,
            fit_certified: self.fit_certified.load(Ordering::Relaxed),
            fit_failed: self.fit_failed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_core::family::cold_solve;
    use cfmap_core::{canonicalize, SpaceMap};
    use cfmap_model::algorithms;

    fn observe_matmul(store: &FamilyStore, sizes: &[i64]) {
        for &mu in sizes {
            let alg = algorithms::matmul(mu);
            let space = SpaceMap::row(&[1, 1, -1]);
            let canon = canonicalize(&alg, &space);
            let (key, p) = FamilyKey::of(&canon.problem);
            let inst = cold_solve(&key, p).unwrap().unwrap();
            store.observe(&canon.problem, inst.schedule, inst.objective);
        }
    }

    #[test]
    fn observe_fit_lookup_round_trip() {
        let store = FamilyStore::new();
        observe_matmul(&store, &[2, 3, 4]);
        assert_eq!(store.stats().observing, 1);
        // Fit promotes the observations to a certificate…
        let fitted = store.fit_step().expect("a family is ready").expect("matmul certifies");
        assert_eq!(store.stats().certificates, 1);
        assert_eq!(store.stats().fit_certified, 1);
        // …and nothing further is ready.
        assert!(store.fit_step().is_none());
        // A size far outside the fitted range answers from the template.
        let alg = algorithms::matmul(9);
        let canon = canonicalize(&alg, &SpaceMap::row(&[1, 1, -1]));
        let hit = store.lookup(&canon.problem).expect("certificate covers μ = 9");
        let cold = cold_solve(&fitted, 9).unwrap().unwrap();
        assert_eq!(hit.schedule, cold.schedule);
        assert_eq!(hit.total_time, cold.total_time);
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn too_few_sizes_do_not_certify() {
        let store = FamilyStore::new();
        observe_matmul(&store, &[2, 3]);
        assert!(store.fit_step().is_none(), "2 sizes must not be fitted");
        assert_eq!(store.stats().certificates, 0);
    }

    #[test]
    fn non_affine_family_is_rejected_once() {
        let store = FamilyStore::new();
        let key = FamilyKey {
            deps: vec![vec![1, 0], vec![0, 1]],
            space: vec![vec![1, 0]],
            shape: vec![None, None],
        };
        for p in [2i64, 3, 4] {
            store.observe(&key.problem_at(p), vec![(p + 1) * (p + 1), 1], p * 10);
        }
        let result = store.fit_step().expect("ready to fit");
        assert!(matches!(result, Err(CertifyError::NonAffine { .. })), "{result:?}");
        let stats = store.stats();
        assert_eq!((stats.rejected, stats.fit_failed), (1, 1));
        // Rejected families neither re-fit nor re-observe.
        assert!(store.fit_step().is_none());
        store.observe(&key.problem_at(5), vec![36, 1], 50);
        assert_eq!(store.stats().observing, 0);
    }
}
