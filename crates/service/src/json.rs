//! Hand-rolled JSON: a value type, a recursive-descent parser and a
//! serializer.
//!
//! The workspace's hermetic build policy (no registry crates) rules out
//! `serde`; the seed repo only had one-way `to_json` emitters. The wire
//! format of `cfmapd` needs round-tripping, so this module implements the
//! subset of JSON the protocol uses — with one deliberate restriction:
//! **numbers are `i64`**. Every quantity in the mapping theory is an
//! integer, floats would import equality headaches into the cache layer,
//! and rejecting `1.5` loudly beats truncating it silently.
//!
//! Objects preserve insertion order (they are association lists, not hash
//! maps), so `parse(serialize(x)) == x` holds structurally, which the
//! testkit property tests in `tests/wire_props.rs` exercise.

use std::fmt;

/// A JSON value. Numbers are `i64` by design (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (the only number form the protocol uses).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Build an array of integers.
    pub fn ints(values: &[i64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Int(v)).collect())
    }

    /// Build an array of integer arrays (a matrix).
    pub fn int_rows(rows: &[Vec<i64>]) -> Json {
        Json::Arr(rows.iter().map(|r| Json::ints(r)).collect())
    }

    /// Serialize to a compact JSON string.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.serialize())
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected (stack-overflow guard against
/// adversarial `[[[[…`).
const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { offset: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos on the char *after* the
                            // escape already; skip the shared += 1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    // Decode only the next sequence (≤ 4 bytes) — running
                    // from_utf8 over the whole tail per character made
                    // string parsing O(n²).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // A 4-byte window holds any complete UTF-8 char,
                        // so a valid prefix shorter than the window still
                        // contains the char we want; an empty prefix
                        // means the sequence itself is bad or truncated.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("prefix is valid")
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    let c = valid.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err(
                "non-integer numbers are not part of the cfmapd wire format",
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| JsonError { offset: start, msg: format!("bad integer {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Int(0)),
            ("-42", Json::Int(-42)),
            ("9223372036854775807", Json::Int(i64::MAX)),
            ("-9223372036854775808", Json::Int(i64::MIN)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.serialize()).unwrap(), value);
        }
    }

    #[test]
    fn nested_structures() {
        let text = r#" {"a": [1, 2, {"b": null}], "c": "x\ny", "d": true} "#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(parse(&v.serialize()).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let s = Json::Str("quote \" slash \\ newline \n tab \t unicode \u{1F600} nul-ish \u{1}".into());
        assert_eq!(parse(&s.serialize()).unwrap(), s);
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn long_mixed_width_strings_round_trip() {
        // The windowed char decoder must walk multi-byte sequences of
        // every width, including back-to-back ones and one ending flush
        // with the input (the 4-byte window is then truncated).
        let body: String = "aé€😀".repeat(2000);
        for tail in ["", "é", "€", "😀"] {
            let s = Json::Str(format!("{body}{tail}"));
            assert_eq!(parse(&s.serialize()).unwrap(), s);
        }
    }

    #[test]
    fn floats_are_rejected_loudly() {
        let err = parse("1.5").unwrap_err();
        assert!(err.msg.contains("non-integer"), "{err}");
        assert!(parse("1e3").is_err());
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for bad in ["", "[1,", "{\"a\"}", "tru", "\"unterminated", "[1] junk", "{1: 2}"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert_eq!(parse("  [1, x]").unwrap_err().offset, 6);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.serialize(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn int_helpers() {
        assert_eq!(Json::ints(&[1, -2]).serialize(), "[1,-2]");
        assert_eq!(
            Json::int_rows(&[vec![1, 0], vec![0, 1]]).serialize(),
            "[[1,0],[0,1]]"
        );
    }
}
