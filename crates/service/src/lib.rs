//! `cfmapd` — mapping-as-a-service for the Shang & Fortes theory.
//!
//! A mapping search (Procedure 5.1) is a pure function of the problem
//! `(J, D, S)` and its solver knobs — exactly the shape of computation a
//! memoizing service does well. This crate turns the library into a
//! hermetic (std-only) HTTP daemon:
//!
//! * [`json`] — a hand-rolled JSON parser/serializer (no serde; the
//!   hermetic-build policy forbids registry crates);
//! * [`wire`] — request/response schemas that round-trip every
//!   [`cfmap_core::CfmapError`] variant and mirror the CLI's exit-code
//!   taxonomy;
//! * [`cache`] — a sharded `RwLock` LRU design cache with hit / miss /
//!   eviction counters;
//! * [`engine`] — canonicalization-keyed resolution: permuted-but-
//!   equivalent problems (relabeled axes, reordered dependence columns,
//!   rescaled space rows) hit the same cache entry, and batches solve
//!   each distinct problem once;
//! * [`family_store`] — the schedule-family catalogue: solved sizes of
//!   one canonical problem accumulate until a background fitter promotes
//!   them to an affine-in-μ certificate ([`cfmap_core::family`]), after
//!   which *any* size of the family is answered with zero search;
//! * [`snapshot`] — versioned, checksummed persistence of the design
//!   cache and family catalogue (`GET/POST /cache/save`, `--cache-load`),
//!   gated by a canonical-key digest so a snapshot from an incompatible
//!   build is refused precisely instead of served wrongly;
//! * [`server`] — `TcpListener` accept loop + fixed worker pool, with
//!   `/map`, `/batch`, `/stats`, `/family`, `/healthz`, `/cache/clear`,
//!   `/cache/save`, and `/shutdown` routes;
//! * [`client`] — the minimal blocking HTTP client used by
//!   `cfmap client`, the smoke tests, and the throughput bench, with
//!   keep-alive connection reuse;
//! * [`http`] — the shared HTTP/1.1 framing (one parser and writer for
//!   the daemon, the router, and the client);
//! * [`router`] — `cfmapd-router`: cache-affine consistent-hash fan-out
//!   over N backends with health probes, circuit breakers, and bounded
//!   failover.
//!
//! Start a daemon and ask it for the optimal matmul linear-array design:
//!
//! ```
//! use cfmap_service::server::{CfmapServer, ServerConfig};
//! use cfmap_service::wire::{MapRequest, MapResponse};
//!
//! let server = CfmapServer::bind(&ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let stop = server.shutdown_handle().unwrap();
//! let daemon = std::thread::spawn(move || server.run());
//!
//! let req = MapRequest::named("matmul", 4, vec![vec![1, 1, -1]]);
//! let resp = cfmap_service::client::map(&addr, &req).unwrap();
//! match resp {
//!     MapResponse::Ok(o) => assert_eq!(o.total_time, 25),
//!     other => panic!("unexpected {other:?}"),
//! }
//!
//! stop.shutdown();
//! daemon.join().unwrap().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod family_store;
pub mod http;
pub mod json;
pub mod router;
pub mod server;
pub mod snapshot;
pub mod wire;

pub use cache::{CacheStats, ShardedLruCache};
pub use engine::{CacheKey, CachedOutcome, Engine, SolverPolicy};
pub use family_store::{FamilyStats, FamilyStore};
pub use snapshot::Snapshot;
pub use router::{CfmapRouter, Circuit, RouterConfig};
pub use server::{CfmapServer, ServerConfig, ShutdownHandle};
pub use wire::{
    MapOutcome, MapRequest, MapResponse, ParetoOutcome, ParetoPointWire, ParetoRequest,
    ParetoResponse, RouterReject, RouterRejectKind, WireError,
};
