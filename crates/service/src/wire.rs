//! Request/response schemas of the `cfmapd` wire protocol.
//!
//! A [`MapRequest`] names a problem either by workload
//! (`{"algorithm": "matmul", "mu": [4], …}`) or structurally
//! (`{"mu": [4,4,4], "deps": [[1,0,0],…], …}`), plus the space map and
//! optional solver knobs. A [`MapResponse`] carries one of four statuses
//! mirroring the CLI's exit-code taxonomy from the error-taxonomy PR:
//!
//! | status        | CLI exit class | meaning |
//! |---|---|---|
//! | `ok`          | 0 | a mapping, with its [`Certification`] |
//! | `infeasible`  | 1 | the search proved the candidate space empty |
//! | `bad_request` | 2 | malformed request (shape/JSON/unknown workload) |
//! | `error`       | 3 | a structured [`CfmapError`] |
//!
//! Every [`CfmapError`] variant round-trips losslessly
//! (`parse(serialize(e)) == e`), which `tests/wire_props.rs` proves with
//! generated inputs — a daemon that can only *print* its errors cannot be
//! scripted against.

use crate::json::{parse, Json, JsonError};
use cfmap_core::{BudgetLimit, Certification, CfmapError};

/// A malformed request or response (the wire analogue of a CLI usage
/// error, exit class 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the payload.
    pub msg: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad payload: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> WireError {
        WireError { msg: e.to_string() }
    }
}

fn bad(msg: impl Into<String>) -> WireError {
    WireError { msg: msg.into() }
}

/// A mapping request (Problem 2.2: find the time-optimal conflict-free
/// `Π` for a fixed space map).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapRequest {
    /// Named workload from the library (`matmul`, `transitive-closure`,
    /// …). When set, `mu` must hold the single size parameter `[μ]`.
    pub algorithm: Option<String>,
    /// Index-set bounds. For a named workload: `[μ]`; for a structural
    /// request: the full `μ` vector (one entry per axis).
    pub mu: Vec<i64>,
    /// Dependence columns (structural requests only).
    pub deps: Option<Vec<Vec<i64>>>,
    /// Space-map rows (`k − 1` rows of `n` entries).
    pub space: Vec<Vec<i64>>,
    /// Objective cap override (`Procedure51::max_objective`).
    pub cap: Option<i64>,
    /// Candidate budget (`SearchBudget::candidates`); deterministic, so
    /// cacheable.
    pub max_candidates: Option<u64>,
    /// Wall-clock budget in milliseconds; machine-dependent, so requests
    /// carrying it bypass the design cache.
    pub timeout_ms: Option<u64>,
    /// End-to-end deadline in milliseconds, anchored when the server
    /// *accepts* the connection — queueing delay counts against it,
    /// unlike `timeout_ms` which starts when the search starts. Load-
    /// dependent, so requests carrying it bypass the design cache.
    pub deadline_ms: Option<u64>,
}

impl MapRequest {
    /// A named-workload request with no solver knobs.
    pub fn named(algorithm: &str, mu: i64, space: Vec<Vec<i64>>) -> MapRequest {
        MapRequest {
            algorithm: Some(algorithm.to_string()),
            mu: vec![mu],
            deps: None,
            space,
            cap: None,
            max_candidates: None,
            timeout_ms: None,
            deadline_ms: None,
        }
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(alg) = &self.algorithm {
            fields.push(("algorithm".into(), Json::Str(alg.clone())));
        }
        fields.push(("mu".into(), Json::ints(&self.mu)));
        if let Some(deps) = &self.deps {
            fields.push(("deps".into(), Json::int_rows(deps)));
        }
        fields.push(("space".into(), Json::int_rows(&self.space)));
        if let Some(cap) = self.cap {
            fields.push(("cap".into(), Json::Int(cap)));
        }
        if let Some(n) = self.max_candidates {
            fields.push(("max_candidates".into(), Json::Int(clamp_u64(n))));
        }
        if let Some(ms) = self.timeout_ms {
            fields.push(("timeout_ms".into(), Json::Int(clamp_u64(ms))));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".into(), Json::Int(clamp_u64(ms))));
        }
        Json::Obj(fields)
    }

    /// Parse from a JSON value.
    pub fn from_json(v: &Json) -> Result<MapRequest, WireError> {
        let Json::Obj(_) = v else { return Err(bad("request must be an object")) };
        let algorithm = match v.get("algorithm") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(bad("\"algorithm\" must be a string")),
        };
        let mu = int_vec(v.get("mu").ok_or_else(|| bad("missing \"mu\""))?, "mu")?;
        let deps = match v.get("deps") {
            None => None,
            Some(d) => Some(int_matrix(d, "deps")?),
        };
        let space =
            int_matrix(v.get("space").ok_or_else(|| bad("missing \"space\""))?, "space")?;
        let cap = opt_int(v, "cap")?;
        let max_candidates = opt_int(v, "max_candidates")?
            .map(|n| u64::try_from(n).map_err(|_| bad("\"max_candidates\" must be ≥ 0")))
            .transpose()?;
        let timeout_ms = opt_int(v, "timeout_ms")?
            .map(|n| u64::try_from(n).map_err(|_| bad("\"timeout_ms\" must be ≥ 0")))
            .transpose()?;
        let deadline_ms = opt_int(v, "deadline_ms")?
            .map(|n| u64::try_from(n).map_err(|_| bad("\"deadline_ms\" must be ≥ 0")))
            .transpose()?;
        Ok(MapRequest { algorithm, mu, deps, space, cap, max_candidates, timeout_ms, deadline_ms })
    }
}

impl std::str::FromStr for MapRequest {
    type Err = WireError;

    /// Parse from request-body text.
    fn from_str(body: &str) -> Result<MapRequest, WireError> {
        MapRequest::from_json(&parse(body)?)
    }
}

/// The successful payload of a [`MapResponse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapOutcome {
    /// The schedule `Π°` in the caller's axis order.
    pub schedule: Vec<i64>,
    /// Objective `f = Σ |π_i| μ_i`.
    pub objective: i64,
    /// Total time `t = f + 1`.
    pub total_time: i64,
    /// Trust level of the result.
    pub certification: Certification,
    /// Candidates screened by the search that produced this answer.
    pub candidates_examined: u64,
    /// Whether the answer came from the design cache.
    pub cached: bool,
    /// Processors used by the synthesized array.
    pub processors: u64,
    /// Array dimensionality `k − 1`.
    pub array_dims: u64,
}

/// A mapping response, one variant per exit-code class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapResponse {
    /// Exit class 0: a mapping was found.
    Ok(MapOutcome),
    /// Exit class 1: the search completed and proved infeasibility.
    Infeasible {
        /// Candidates screened before the proof.
        candidates_examined: u64,
    },
    /// Exit class 2: the request itself was malformed.
    BadRequest {
        /// What was wrong.
        msg: String,
    },
    /// Exit class 3: a structured library failure.
    Error(CfmapError),
}

impl MapResponse {
    /// The CLI exit-code class this response corresponds to.
    pub fn exit_class(&self) -> u8 {
        match self {
            MapResponse::Ok(_) => 0,
            MapResponse::Infeasible { .. } => 1,
            MapResponse::BadRequest { .. } => 2,
            MapResponse::Error(_) => 3,
        }
    }

    /// The HTTP status code the server answers with. Internal errors are
    /// the daemon's fault, not the request's, so they alone map to 500.
    pub fn http_status(&self) -> u16 {
        match self {
            MapResponse::Ok(_) | MapResponse::Infeasible { .. } => 200,
            MapResponse::BadRequest { .. } => 400,
            MapResponse::Error(CfmapError::Internal { .. }) => 500,
            MapResponse::Error(_) => 422,
        }
    }

    /// Serialize to a JSON value. `exit_class` is emitted as a derived
    /// convenience field and ignored on parse.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        match self {
            MapResponse::Ok(o) => {
                fields.push(("status".into(), Json::Str("ok".into())));
                fields.push(("schedule".into(), Json::ints(&o.schedule)));
                fields.push(("objective".into(), Json::Int(o.objective)));
                fields.push(("total_time".into(), Json::Int(o.total_time)));
                fields.push(("certification".into(), certification_to_json(&o.certification)));
                fields.push((
                    "candidates_examined".into(),
                    Json::Int(clamp_u64(o.candidates_examined)),
                ));
                fields.push(("cached".into(), Json::Bool(o.cached)));
                fields.push(("processors".into(), Json::Int(clamp_u64(o.processors))));
                fields.push(("array_dims".into(), Json::Int(clamp_u64(o.array_dims))));
            }
            MapResponse::Infeasible { candidates_examined } => {
                fields.push(("status".into(), Json::Str("infeasible".into())));
                fields.push((
                    "candidates_examined".into(),
                    Json::Int(clamp_u64(*candidates_examined)),
                ));
            }
            MapResponse::BadRequest { msg } => {
                fields.push(("status".into(), Json::Str("bad_request".into())));
                fields.push(("message".into(), Json::Str(msg.clone())));
            }
            MapResponse::Error(e) => {
                fields.push(("status".into(), Json::Str("error".into())));
                fields.push(("error".into(), error_to_json(e)));
            }
        }
        fields.push(("exit_class".into(), Json::Int(i64::from(self.exit_class()))));
        Json::Obj(fields)
    }

    /// Parse from a JSON value.
    pub fn from_json(v: &Json) -> Result<MapResponse, WireError> {
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"status\""))?;
        match status {
            "ok" => Ok(MapResponse::Ok(MapOutcome {
                schedule: int_vec(
                    v.get("schedule").ok_or_else(|| bad("missing \"schedule\""))?,
                    "schedule",
                )?,
                objective: req_int(v, "objective")?,
                total_time: req_int(v, "total_time")?,
                certification: certification_from_json(
                    v.get("certification").ok_or_else(|| bad("missing \"certification\""))?,
                )?,
                candidates_examined: req_u64(v, "candidates_examined")?,
                cached: v
                    .get("cached")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("missing \"cached\""))?,
                processors: req_u64(v, "processors")?,
                array_dims: req_u64(v, "array_dims")?,
            })),
            "infeasible" => Ok(MapResponse::Infeasible {
                candidates_examined: req_u64(v, "candidates_examined")?,
            }),
            "bad_request" => Ok(MapResponse::BadRequest {
                msg: v
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing \"message\""))?
                    .to_string(),
            }),
            "error" => Ok(MapResponse::Error(error_from_json(
                v.get("error").ok_or_else(|| bad("missing \"error\""))?,
            )?)),
            other => Err(bad(format!("unknown status {other:?}"))),
        }
    }
}

impl std::str::FromStr for MapResponse {
    type Err = WireError;

    /// Parse from response-body text.
    fn from_str(body: &str) -> Result<MapResponse, WireError> {
        MapResponse::from_json(&parse(body)?)
    }
}

/// Why `cfmapd-router` answered a request itself instead of forwarding
/// a backend's answer. Each kind maps to exactly one HTTP status so
/// clients can branch on either the status code or the decoded kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterRejectKind {
    /// The router was started with no (or an empty) backend list — a
    /// deployment error, not a transient: `503`.
    NoBackends,
    /// Every candidate backend is open-circuit, draining, or
    /// unreachable; the fleet has no capacity right now: `503` +
    /// `Retry-After`.
    AllCircuitsOpen,
    /// The chosen backend could not be reached and the request was not
    /// eligible for failover (non-idempotent route): `502`.
    UpstreamUnreachable,
    /// Failover was attempted but every replica within the failover
    /// budget failed at the transport level: `502`.
    FailoverExhausted,
    /// The request body is malformed in a way the router can prove
    /// locally (e.g. a `/batch` with an empty or wholly unusable
    /// `requests` array) — forwarding would only burn a backend's time
    /// to produce the same answer: `400`.
    BadRequest,
}

impl RouterRejectKind {
    /// The wire tag (`kind` field) of this rejection.
    pub fn tag(self) -> &'static str {
        match self {
            RouterRejectKind::NoBackends => "no_backends",
            RouterRejectKind::AllCircuitsOpen => "all_circuits_open",
            RouterRejectKind::UpstreamUnreachable => "upstream_unreachable",
            RouterRejectKind::FailoverExhausted => "failover_exhausted",
            RouterRejectKind::BadRequest => "bad_request",
        }
    }

    /// The HTTP status the router answers with for this kind.
    pub fn http_status(self) -> u16 {
        match self {
            RouterRejectKind::NoBackends | RouterRejectKind::AllCircuitsOpen => 503,
            RouterRejectKind::UpstreamUnreachable | RouterRejectKind::FailoverExhausted => 502,
            RouterRejectKind::BadRequest => 400,
        }
    }
}

/// The JSON body of a router-originated `502`/`503`. Round-trips through
/// the wire codec like every other error payload, so clients can script
/// against the router without string-matching messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterReject {
    /// Why the router rejected the request.
    pub kind: RouterRejectKind,
    /// Human-readable detail (which backends were tried, why skipped).
    pub message: String,
    /// Backends the router actually attempted before giving up.
    pub attempted: u64,
}

impl RouterReject {
    /// Serialize to a JSON value. `status` is fixed to `"router_reject"`
    /// so the body is distinguishable from a backend's `MapResponse`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("status".into(), Json::Str("router_reject".into())),
            ("kind".into(), Json::Str(self.kind.tag().into())),
            ("message".into(), Json::Str(self.message.clone())),
            ("attempted".into(), Json::Int(clamp_u64(self.attempted))),
        ])
    }

    /// Parse from a JSON value.
    pub fn from_json(v: &Json) -> Result<RouterReject, WireError> {
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"status\""))?;
        if status != "router_reject" {
            return Err(bad(format!("not a router rejection: status {status:?}")));
        }
        let kind = match v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"kind\""))?
        {
            "no_backends" => RouterRejectKind::NoBackends,
            "all_circuits_open" => RouterRejectKind::AllCircuitsOpen,
            "upstream_unreachable" => RouterRejectKind::UpstreamUnreachable,
            "failover_exhausted" => RouterRejectKind::FailoverExhausted,
            "bad_request" => RouterRejectKind::BadRequest,
            other => return Err(bad(format!("unknown router reject kind {other:?}"))),
        };
        Ok(RouterReject {
            kind,
            message: v
                .get("message")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing \"message\""))?
                .to_string(),
            attempted: req_u64(v, "attempted")?,
        })
    }
}

impl std::str::FromStr for RouterReject {
    type Err = WireError;

    /// Parse from response-body text.
    fn from_str(body: &str) -> Result<RouterReject, WireError> {
        RouterReject::from_json(&parse(body)?)
    }
}

/// A Pareto-frontier request (`POST /pareto`). The problem is named or
/// structural exactly like a [`MapRequest`]; the scope is chosen by
/// which side is pinned: `space` (frontier over schedules), `schedule`
/// (frontier over 1-row space maps), or neither (joint). Pinning both
/// is rejected. Budgets and `include_bandwidth` populate the engine's
/// `ResourceModel`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParetoRequest {
    /// Named workload, as in [`MapRequest::algorithm`].
    pub algorithm: Option<String>,
    /// Index-set bounds, as in [`MapRequest::mu`].
    pub mu: Vec<i64>,
    /// Dependence columns (structural requests only).
    pub deps: Option<Vec<Vec<i64>>>,
    /// Pinned space-map rows (fixed-space scope), if any.
    pub space: Option<Vec<Vec<i64>>>,
    /// Pinned schedule (fixed-schedule scope), if any.
    pub schedule: Option<Vec<i64>>,
    /// Objective cap override for the schedule scan.
    pub cap: Option<i64>,
    /// Bound on `|s_i|` for enumerated space rows (default 2).
    pub entry_bound: Option<i64>,
    /// Track peak link bandwidth as a fourth objective axis.
    pub include_bandwidth: bool,
    /// Processor budget, if any.
    pub max_processors: Option<u64>,
    /// Wire-length budget, if any.
    pub max_wires: Option<i64>,
    /// Peak-bandwidth budget, if any (implies the bandwidth axis).
    pub max_bandwidth: Option<u64>,
}

impl ParetoRequest {
    /// A named-workload joint-scope request with no knobs.
    pub fn named(algorithm: &str, mu: i64) -> ParetoRequest {
        ParetoRequest {
            algorithm: Some(algorithm.to_string()),
            mu: vec![mu],
            deps: None,
            space: None,
            schedule: None,
            cap: None,
            entry_bound: None,
            include_bandwidth: false,
            max_processors: None,
            max_wires: None,
            max_bandwidth: None,
        }
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(alg) = &self.algorithm {
            fields.push(("algorithm".into(), Json::Str(alg.clone())));
        }
        fields.push(("mu".into(), Json::ints(&self.mu)));
        if let Some(deps) = &self.deps {
            fields.push(("deps".into(), Json::int_rows(deps)));
        }
        if let Some(space) = &self.space {
            fields.push(("space".into(), Json::int_rows(space)));
        }
        if let Some(pi) = &self.schedule {
            fields.push(("schedule".into(), Json::ints(pi)));
        }
        if let Some(cap) = self.cap {
            fields.push(("cap".into(), Json::Int(cap)));
        }
        if let Some(b) = self.entry_bound {
            fields.push(("entry_bound".into(), Json::Int(b)));
        }
        if self.include_bandwidth {
            fields.push(("include_bandwidth".into(), Json::Bool(true)));
        }
        if let Some(p) = self.max_processors {
            fields.push(("max_processors".into(), Json::Int(clamp_u64(p))));
        }
        if let Some(w) = self.max_wires {
            fields.push(("max_wires".into(), Json::Int(w)));
        }
        if let Some(b) = self.max_bandwidth {
            fields.push(("max_bandwidth".into(), Json::Int(clamp_u64(b))));
        }
        Json::Obj(fields)
    }

    /// Parse from a JSON value.
    pub fn from_json(v: &Json) -> Result<ParetoRequest, WireError> {
        let Json::Obj(_) = v else { return Err(bad("request must be an object")) };
        let algorithm = match v.get("algorithm") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(bad("\"algorithm\" must be a string")),
        };
        let mu = int_vec(v.get("mu").ok_or_else(|| bad("missing \"mu\""))?, "mu")?;
        let deps = match v.get("deps") {
            None => None,
            Some(d) => Some(int_matrix(d, "deps")?),
        };
        let space = match v.get("space") {
            None | Some(Json::Null) => None,
            Some(s) => Some(int_matrix(s, "space")?),
        };
        let schedule = match v.get("schedule") {
            None | Some(Json::Null) => None,
            Some(s) => Some(int_vec(s, "schedule")?),
        };
        let cap = opt_int(v, "cap")?;
        let entry_bound = opt_int(v, "entry_bound")?;
        let include_bandwidth = match v.get("include_bandwidth") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(bad("\"include_bandwidth\" must be a boolean")),
        };
        let max_processors = opt_int(v, "max_processors")?
            .map(|n| u64::try_from(n).map_err(|_| bad("\"max_processors\" must be ≥ 0")))
            .transpose()?;
        let max_wires = opt_int(v, "max_wires")?;
        let max_bandwidth = opt_int(v, "max_bandwidth")?
            .map(|n| u64::try_from(n).map_err(|_| bad("\"max_bandwidth\" must be ≥ 0")))
            .transpose()?;
        Ok(ParetoRequest {
            algorithm,
            mu,
            deps,
            space,
            schedule,
            cap,
            entry_bound,
            include_bandwidth,
            max_processors,
            max_wires,
            max_bandwidth,
        })
    }
}

impl std::str::FromStr for ParetoRequest {
    type Err = WireError;

    /// Parse from request-body text.
    fn from_str(body: &str) -> Result<ParetoRequest, WireError> {
        ParetoRequest::from_json(&parse(body)?)
    }
}

/// One frontier point on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParetoPointWire {
    /// The space-map rows of the design.
    pub space: Vec<Vec<i64>>,
    /// The schedule, in the caller's axis order.
    pub schedule: Vec<i64>,
    /// Makespan `1 + Σ|π_i|μ_i`.
    pub total_time: i64,
    /// Processor (site) count.
    pub processors: u64,
    /// Total wire length.
    pub wires: i64,
    /// Peak link bandwidth; present iff the request tracked it.
    pub bandwidth: Option<u64>,
}

impl ParetoPointWire {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("space".into(), Json::int_rows(&self.space)),
            ("schedule".into(), Json::ints(&self.schedule)),
            ("total_time".into(), Json::Int(self.total_time)),
            ("processors".into(), Json::Int(clamp_u64(self.processors))),
            ("wires".into(), Json::Int(self.wires)),
        ];
        if let Some(bw) = self.bandwidth {
            fields.push(("bandwidth".into(), Json::Int(clamp_u64(bw))));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<ParetoPointWire, WireError> {
        Ok(ParetoPointWire {
            space: int_matrix(v.get("space").ok_or_else(|| bad("missing \"space\""))?, "space")?,
            schedule: int_vec(
                v.get("schedule").ok_or_else(|| bad("missing \"schedule\""))?,
                "schedule",
            )?,
            total_time: req_int(v, "total_time")?,
            processors: req_u64(v, "processors")?,
            wires: req_int(v, "wires")?,
            bandwidth: opt_int(v, "bandwidth")?
                .map(|n| u64::try_from(n).map_err(|_| bad("\"bandwidth\" must be ≥ 0")))
                .transpose()?,
        })
    }
}

/// The successful payload of a [`ParetoResponse`]. An empty frontier
/// (`points: []`) is a successful answer: the model admits no design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParetoOutcome {
    /// The non-dominated set, ascending by objective vector.
    pub points: Vec<ParetoPointWire>,
    /// `points.len()` as reported by the engine.
    pub frontier_size: u64,
    /// Accepted designs pruned as dominated or duplicate.
    pub dominated_pruned: u64,
    /// Candidates screened across the whole search.
    pub candidates_examined: u64,
    /// Whether the answer came from the frontier cache.
    pub cached: bool,
    /// Every point was re-verified by the cycle-level simulator
    /// (conflict-free, within the bandwidth budget) before caching.
    pub verified: bool,
}

/// A Pareto-frontier response, mirroring [`MapResponse`]'s taxonomy
/// minus the `infeasible` class (an empty frontier is an `ok`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParetoResponse {
    /// Exit class 0: the exact non-dominated set (possibly empty).
    Ok(ParetoOutcome),
    /// Exit class 2: the request itself was malformed.
    BadRequest {
        /// What was wrong.
        msg: String,
    },
    /// Exit class 3: a structured library failure.
    Error(CfmapError),
}

impl ParetoResponse {
    /// The CLI exit-code class this response corresponds to.
    pub fn exit_class(&self) -> u8 {
        match self {
            ParetoResponse::Ok(_) => 0,
            ParetoResponse::BadRequest { .. } => 2,
            ParetoResponse::Error(_) => 3,
        }
    }

    /// The HTTP status code the server answers with (same mapping as
    /// [`MapResponse::http_status`]).
    pub fn http_status(&self) -> u16 {
        match self {
            ParetoResponse::Ok(_) => 200,
            ParetoResponse::BadRequest { .. } => 400,
            ParetoResponse::Error(CfmapError::Internal { .. }) => 500,
            ParetoResponse::Error(_) => 422,
        }
    }

    /// Serialize to a JSON value. `exit_class` is emitted as a derived
    /// convenience field and ignored on parse.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        match self {
            ParetoResponse::Ok(o) => {
                fields.push(("status".into(), Json::Str("ok".into())));
                fields.push((
                    "points".into(),
                    Json::Arr(o.points.iter().map(ParetoPointWire::to_json).collect()),
                ));
                fields.push(("frontier_size".into(), Json::Int(clamp_u64(o.frontier_size))));
                fields
                    .push(("dominated_pruned".into(), Json::Int(clamp_u64(o.dominated_pruned))));
                fields.push((
                    "candidates_examined".into(),
                    Json::Int(clamp_u64(o.candidates_examined)),
                ));
                fields.push(("cached".into(), Json::Bool(o.cached)));
                fields.push(("verified".into(), Json::Bool(o.verified)));
            }
            ParetoResponse::BadRequest { msg } => {
                fields.push(("status".into(), Json::Str("bad_request".into())));
                fields.push(("message".into(), Json::Str(msg.clone())));
            }
            ParetoResponse::Error(e) => {
                fields.push(("status".into(), Json::Str("error".into())));
                fields.push(("error".into(), error_to_json(e)));
            }
        }
        fields.push(("exit_class".into(), Json::Int(i64::from(self.exit_class()))));
        Json::Obj(fields)
    }

    /// Parse from a JSON value.
    pub fn from_json(v: &Json) -> Result<ParetoResponse, WireError> {
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"status\""))?;
        match status {
            "ok" => Ok(ParetoResponse::Ok(ParetoOutcome {
                points: v
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"points\""))?
                    .iter()
                    .map(ParetoPointWire::from_json)
                    .collect::<Result<_, _>>()?,
                frontier_size: req_u64(v, "frontier_size")?,
                dominated_pruned: req_u64(v, "dominated_pruned")?,
                candidates_examined: req_u64(v, "candidates_examined")?,
                cached: v
                    .get("cached")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("missing \"cached\""))?,
                verified: v
                    .get("verified")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("missing \"verified\""))?,
            })),
            "bad_request" => Ok(ParetoResponse::BadRequest {
                msg: v
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing \"message\""))?
                    .to_string(),
            }),
            "error" => Ok(ParetoResponse::Error(error_from_json(
                v.get("error").ok_or_else(|| bad("missing \"error\""))?,
            )?)),
            other => Err(bad(format!("unknown status {other:?}"))),
        }
    }
}

impl std::str::FromStr for ParetoResponse {
    type Err = WireError;

    /// Parse from response-body text.
    fn from_str(body: &str) -> Result<ParetoResponse, WireError> {
        ParetoResponse::from_json(&parse(body)?)
    }
}

/// Encode a [`Certification`].
pub fn certification_to_json(c: &Certification) -> Json {
    match c {
        Certification::Optimal => Json::Str("optimal".into()),
        Certification::BestEffort { candidates_examined } => Json::Obj(vec![(
            "best_effort".into(),
            Json::Obj(vec![(
                "candidates_examined".into(),
                Json::Int(clamp_u64(*candidates_examined)),
            )]),
        )]),
        Certification::Infeasible => Json::Str("infeasible".into()),
    }
}

/// Decode a [`Certification`].
pub fn certification_from_json(v: &Json) -> Result<Certification, WireError> {
    match v {
        Json::Str(s) if s == "optimal" => Ok(Certification::Optimal),
        Json::Str(s) if s == "infeasible" => Ok(Certification::Infeasible),
        Json::Obj(_) => {
            let inner = v
                .get("best_effort")
                .ok_or_else(|| bad("unknown certification object"))?;
            Ok(Certification::BestEffort {
                candidates_examined: req_u64(inner, "candidates_examined")?,
            })
        }
        _ => Err(bad("unknown certification")),
    }
}

/// Encode a [`CfmapError`] with a `kind` tag per variant.
pub fn error_to_json(e: &CfmapError) -> Json {
    let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
    let s = |key: &str, v: &str| (key.to_string(), Json::Str(v.to_string()));
    let n = |key: &str, v: i64| (key.to_string(), Json::Int(v));
    let fields = match e {
        CfmapError::RankDeficient { expected, actual } => vec![
            kind("rank_deficient"),
            n("expected", usize_i64(*expected)),
            n("actual", usize_i64(*actual)),
        ],
        CfmapError::InvalidSchedule { schedule, reason } => vec![
            kind("invalid_schedule"),
            ("schedule".into(), Json::ints(schedule)),
            s("reason", reason),
        ],
        CfmapError::Unroutable { dependence, reason } => vec![
            kind("unroutable"),
            n("dependence", usize_i64(*dependence)),
            s("reason", reason),
        ],
        CfmapError::Overflow { context } => vec![kind("overflow"), s("context", context)],
        CfmapError::BudgetExhausted { limit, candidates_examined } => vec![
            kind("budget_exhausted"),
            s(
                "limit",
                match limit {
                    BudgetLimit::Candidates => "candidates",
                    BudgetLimit::Nodes => "nodes",
                    BudgetLimit::WallClock => "wall_clock",
                    BudgetLimit::Deadline => "deadline",
                    BudgetLimit::Cancelled => "cancelled",
                },
            ),
            n("candidates_examined", clamp_u64(*candidates_examined)),
        ],
        CfmapError::DimensionMismatch { context, expected, actual } => vec![
            kind("dimension_mismatch"),
            s("context", context),
            n("expected", usize_i64(*expected)),
            n("actual", usize_i64(*actual)),
        ],
        CfmapError::Unsupported { reason } => vec![kind("unsupported"), s("reason", reason)],
        CfmapError::Internal { context } => vec![kind("internal"), s("context", context)],
        CfmapError::SnapshotMismatch { field, expected, actual } => vec![
            kind("snapshot_mismatch"),
            s("field", field),
            s("expected", expected),
            s("actual", actual),
        ],
    };
    Json::Obj(fields)
}

/// Decode a [`CfmapError`].
pub fn error_from_json(v: &Json) -> Result<CfmapError, WireError> {
    let kind =
        v.get("kind").and_then(Json::as_str).ok_or_else(|| bad("missing error \"kind\""))?;
    let text = |key: &str| -> Result<String, WireError> {
        Ok(v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| bad(format!("missing error field {key:?}")))?
            .to_string())
    };
    match kind {
        "rank_deficient" => Ok(CfmapError::RankDeficient {
            expected: req_usize(v, "expected")?,
            actual: req_usize(v, "actual")?,
        }),
        "invalid_schedule" => Ok(CfmapError::InvalidSchedule {
            schedule: int_vec(
                v.get("schedule").ok_or_else(|| bad("missing \"schedule\""))?,
                "schedule",
            )?,
            reason: text("reason")?,
        }),
        "unroutable" => Ok(CfmapError::Unroutable {
            dependence: req_usize(v, "dependence")?,
            reason: text("reason")?,
        }),
        "overflow" => Ok(CfmapError::Overflow { context: text("context")? }),
        "budget_exhausted" => Ok(CfmapError::BudgetExhausted {
            limit: match text("limit")?.as_str() {
                "candidates" => BudgetLimit::Candidates,
                "nodes" => BudgetLimit::Nodes,
                "wall_clock" => BudgetLimit::WallClock,
                "deadline" => BudgetLimit::Deadline,
                "cancelled" => BudgetLimit::Cancelled,
                other => return Err(bad(format!("unknown budget limit {other:?}"))),
            },
            candidates_examined: req_u64(v, "candidates_examined")?,
        }),
        "dimension_mismatch" => Ok(CfmapError::DimensionMismatch {
            context: text("context")?,
            expected: req_usize(v, "expected")?,
            actual: req_usize(v, "actual")?,
        }),
        "unsupported" => Ok(CfmapError::Unsupported { reason: text("reason")? }),
        "internal" => Ok(CfmapError::Internal { context: text("context")? }),
        "snapshot_mismatch" => Ok(CfmapError::SnapshotMismatch {
            field: text("field")?,
            expected: text("expected")?,
            actual: text("actual")?,
        }),
        other => Err(bad(format!("unknown error kind {other:?}"))),
    }
}

/// `u64` counters ride in JSON integers; values beyond `i64::MAX` (never
/// produced by real searches) saturate rather than wrap.
fn clamp_u64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

fn usize_i64(v: usize) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

fn opt_int(v: &Json, key: &str) -> Result<Option<i64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Int(n)) => Ok(Some(*n)),
        Some(_) => Err(bad(format!("{key:?} must be an integer"))),
    }
}

fn req_int(v: &Json, key: &str) -> Result<i64, WireError> {
    opt_int(v, key)?.ok_or_else(|| bad(format!("missing {key:?}")))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, WireError> {
    u64::try_from(req_int(v, key)?).map_err(|_| bad(format!("{key:?} must be ≥ 0")))
}

fn req_usize(v: &Json, key: &str) -> Result<usize, WireError> {
    usize::try_from(req_int(v, key)?).map_err(|_| bad(format!("{key:?} must be ≥ 0")))
}

fn int_vec(v: &Json, key: &str) -> Result<Vec<i64>, WireError> {
    v.as_arr()
        .ok_or_else(|| bad(format!("{key:?} must be an array")))?
        .iter()
        .map(|item| item.as_i64().ok_or_else(|| bad(format!("{key:?} entries must be integers"))))
        .collect()
}

fn int_matrix(v: &Json, key: &str) -> Result<Vec<Vec<i64>>, WireError> {
    v.as_arr()
        .ok_or_else(|| bad(format!("{key:?} must be an array of arrays")))?
        .iter()
        .map(|row| int_vec(row, key))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn request_round_trips() {
        let requests = vec![
            MapRequest::named("matmul", 4, vec![vec![1, 1, -1]]),
            MapRequest {
                algorithm: None,
                mu: vec![4, 4, 4],
                deps: Some(vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]]),
                space: vec![vec![1, 1, -1]],
                cap: Some(30),
                max_candidates: Some(500),
                timeout_ms: Some(50),
                deadline_ms: Some(250),
            },
        ];
        for r in requests {
            let text = r.to_json().serialize();
            assert_eq!(MapRequest::from_str(&text).unwrap(), r, "{text}");
        }
    }

    #[test]
    fn every_error_variant_round_trips() {
        let errors = vec![
            CfmapError::RankDeficient { expected: 2, actual: 1 },
            CfmapError::InvalidSchedule {
                schedule: vec![0, 1, -3],
                reason: "Π·d̄₁ = 0 \"quoted\"".into(),
            },
            CfmapError::Unroutable { dependence: 2, reason: "distance 3 > budget 1".into() },
            CfmapError::Overflow { context: "space span".into() },
            CfmapError::BudgetExhausted {
                limit: BudgetLimit::Candidates,
                candidates_examined: 7,
            },
            CfmapError::BudgetExhausted { limit: BudgetLimit::Nodes, candidates_examined: 0 },
            CfmapError::BudgetExhausted {
                limit: BudgetLimit::WallClock,
                candidates_examined: u64::MAX,
            },
            CfmapError::BudgetExhausted { limit: BudgetLimit::Deadline, candidates_examined: 3 },
            CfmapError::BudgetExhausted { limit: BudgetLimit::Cancelled, candidates_examined: 9 },
            CfmapError::DimensionMismatch { context: "S vs Π".into(), expected: 3, actual: 2 },
            CfmapError::Unsupported { reason: "3-row S".into() },
            CfmapError::Internal { context: "solve_parallel worker panicked".into() },
            CfmapError::SnapshotMismatch {
                field: "digest".into(),
                expected: "00112233aabbccdd".into(),
                actual: "ffeeddcc99887766".into(),
            },
        ];
        for e in errors {
            let resp = MapResponse::Error(e.clone());
            let text = resp.to_json().serialize();
            let back = MapResponse::from_str(&text).unwrap();
            if matches!(
                e,
                CfmapError::BudgetExhausted { candidates_examined: u64::MAX, .. }
            ) {
                // The saturating counter is the one lossy corner.
                assert!(matches!(back, MapResponse::Error(CfmapError::BudgetExhausted { .. })));
            } else {
                assert_eq!(back, resp, "{text}");
            }
            assert_eq!(resp.exit_class(), 3);
            let expected_status =
                if matches!(e, CfmapError::Internal { .. }) { 500 } else { 422 };
            assert_eq!(resp.http_status(), expected_status);
        }
    }

    #[test]
    fn response_statuses_round_trip() {
        let ok = MapResponse::Ok(MapOutcome {
            schedule: vec![1, 4, 1],
            objective: 24,
            total_time: 25,
            certification: Certification::Optimal,
            candidates_examined: 90,
            cached: true,
            processors: 13,
            array_dims: 1,
        });
        let best = MapResponse::Ok(MapOutcome {
            schedule: vec![1, 5, 25],
            objective: 124,
            total_time: 125,
            certification: Certification::BestEffort { candidates_examined: 2 },
            candidates_examined: 2,
            cached: false,
            processors: 9,
            array_dims: 1,
        });
        let inf = MapResponse::Infeasible { candidates_examined: 321 };
        let badreq = MapResponse::BadRequest { msg: "missing \"mu\"".into() };
        for (r, class, status) in
            [(ok, 0u8, 200u16), (best, 0, 200), (inf, 1, 200), (badreq, 2, 400)]
        {
            assert_eq!(r.exit_class(), class);
            assert_eq!(r.http_status(), status);
            let text = r.to_json().serialize();
            assert_eq!(MapResponse::from_str(&text).unwrap(), r, "{text}");
            assert!(text.contains(&format!("\"exit_class\":{class}")));
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        for bad_body in [
            "{}",
            r#"{"mu": [4]}"#,
            r#"{"mu": "x", "space": [[1]]}"#,
            r#"{"mu": [4], "space": [[1]], "max_candidates": -3}"#,
            "[1,2,3]",
        ] {
            assert!(MapRequest::from_str(bad_body).is_err(), "{bad_body}");
        }
        assert!(MapResponse::from_str(r#"{"status":"weird"}"#).is_err());
        assert!(error_from_json(&parse(r#"{"kind":"nope"}"#).unwrap()).is_err());
    }
}
