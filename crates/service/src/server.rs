//! The `cfmapd` HTTP server.
//!
//! Plain `std`: a `TcpListener` accept loop feeds accepted connections
//! through a *bounded* `sync_channel` to a fixed pool of worker
//! threads, each of which parses HTTP/1.1 requests, dispatches them
//! against the shared [`Engine`], and answers. When the admission queue
//! is full, new connections are shed with `503` + `Retry-After` rather
//! than buffered without bound. No async runtime, no HTTP library — the
//! protocol subset needed lives in [`crate::http`].
//!
//! Connections close after one request unless the client explicitly
//! sends `Connection: keep-alive`, in which case the worker serves up
//! to [`ServerConfig::max_requests_per_conn`] requests back-to-back on
//! the same socket (each framed by an exact `Content-Length`). Keeping
//! the persistent protocol opt-in preserves the original EOF-framed
//! `Connection: close` contract that raw-socket tests and the fault
//! harness rely on.
//!
//! Routes:
//!
//! | route | body | answer |
//! |---|---|---|
//! | `POST /map` | a `MapRequest` | a `MapResponse` |
//! | `POST /pareto` | a `ParetoRequest` | a `ParetoResponse` (the non-dominated set) |
//! | `POST /batch` | `{"requests": […]}` | `{"responses": […], "distinct_solves": n}` |
//! | `GET /stats` | — | cache + search + server counters |
//! | `GET /metrics` | — | Prometheus text exposition of the registry |
//! | `GET /healthz` | — | liveness: `{"status","draining","queue_depth","workers"}`, always `200` while the process serves |
//! | `GET /readyz` | — | readiness: `200` normally, `503` once draining |
//! | `GET /family` | — | family-catalogue counters + every certificate |
//! | `POST /cache/clear` | — | `{"cleared": n}` |
//! | `GET /cache/save` | — | the warm-start snapshot as text (pipe to a file, ship to new shards) |
//! | `POST /cache/save` | `{"path": "…"}` | atomically write the snapshot server-side |
//! | `POST /shutdown` | — | `{"status":"shutting_down"}`, then the listener drains and exits |
//!
//! A background fitter thread watches the engine's family observations
//! and promotes them to certificates (see [`crate::family_store`]); it
//! exits with the accept loop at shutdown.
//!
//! `/healthz` vs `/readyz`: liveness answers "is the process serving at
//! all" (restart me if not), readiness answers "should new traffic be
//! routed here" (a draining daemon is alive but not ready). The
//! liveness body carries `draining` and the admission-queue depth so a
//! routing tier — `cfmapd-router` — can steer load away *before* the
//! queue fills and sheds.
//!
//! Shutdown is cooperative: `POST /shutdown` (or [`ShutdownHandle::shutdown`])
//! sets an atomic flag and pokes the listener with a loopback connection so
//! the blocking `accept` observes it. `std` exposes no signal API, so
//! SIGTERM/ctrl-C handling is delegated to the process supervisor or the
//! binary's `--watch-stdin` mode (see `src/bin/cfmapd.rs`).

use crate::engine::Engine;
use crate::http::{read_request, write_response_extra, ReadError};
use crate::json::{parse, Json};
use crate::snapshot::{certificate_json, write_atomic};
use crate::wire::{MapRequest, MapResponse, ParetoRequest, ParetoResponse};
use cfmap_core::budget::clock;
use cfmap_core::metrics::{Counter, Gauge, Histogram, DEFAULT_LATENCY_BUCKETS_US};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};
use std::str::FromStr;

/// How long a worker waits for a slow client before abandoning the
/// connection.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a worker waits for the *next* request on a kept-alive
/// connection. Much shorter than [`IO_TIMEOUT`]: an idle persistent
/// connection pins a worker, so patience between requests is a direct
/// tax on pool capacity (and on drain time at shutdown).
const KEEPALIVE_IDLE_TIMEOUT: Duration = Duration::from_secs(2);

/// `Content-Type` of every JSON answer.
const CT_JSON: &str = "application/json";

/// `Content-Type` of the `/metrics` answer (Prometheus text exposition
/// format).
const CT_METRICS: &str = "text/plain; version=0.0.4";

/// `Content-Type` of the `GET /cache/save` answer (the snapshot's own
/// header line carries the version and checksums).
const CT_SNAPSHOT: &str = "text/plain; charset=utf-8";

/// How long the background fitter naps when no family is ready.
const FITTER_IDLE_NAP: Duration = Duration::from_millis(25);

/// Server configuration (all fields have serviceable defaults).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Design-cache capacity (entries).
    pub cache_capacity: usize,
    /// Design-cache shards.
    pub cache_shards: usize,
    /// Emit one structured JSON access-log line per request on stderr
    /// (`--log-format json`).
    pub log_json: bool,
    /// Admission-queue capacity: connections accepted but not yet
    /// claimed by a worker. When full, new connections are shed with
    /// `503` + `Retry-After` instead of buffering without bound.
    pub queue_capacity: usize,
    /// How long shutdown waits for queued and in-flight requests before
    /// cancelling the engine's searches so workers can exit.
    pub drain_deadline: Duration,
    /// Honor `X-Cfmapd-Fault` request headers (worker panics, stalls).
    /// Test-only; keep off in production.
    pub fault_injection: bool,
    /// Requests served on one kept-alive connection before the server
    /// closes it anyway. Bounds how long a single client can pin a
    /// worker, and gives load balancing a natural re-shuffle point.
    pub max_requests_per_conn: usize,
    /// Warm-start snapshot to load at bind time (`--cache-load PATH`).
    /// A version / digest / checksum mismatch fails startup with the
    /// precise [`cfmap_core::CfmapError::SnapshotMismatch`] message
    /// rather than serving from incompatible state.
    pub cache_load: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_capacity: 256,
            cache_shards: 8,
            log_json: false,
            queue_capacity: 64,
            drain_deadline: Duration::from_secs(5),
            fault_injection: false,
            max_requests_per_conn: 100,
            cache_load: None,
        }
    }
}

/// A bound (but not yet running) server.
pub struct CfmapServer {
    listener: TcpListener,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    workers: usize,
    log_json: bool,
    queue_capacity: usize,
    drain_deadline: Duration,
    fault_injection: bool,
    max_requests_per_conn: usize,
    queue_depth: Arc<Gauge>,
    requests_shed: Arc<Counter>,
    drain_duration: Arc<Histogram>,
}

/// An accepted connection, stamped with its accept time on the budget
/// clock. Request deadlines anchor here so time spent waiting in the
/// admission queue counts against the caller's `deadline_ms`.
struct Conn {
    stream: TcpStream,
    accepted_us: u64,
}

/// Lets another thread stop a running [`CfmapServer`].
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// A handle for `flag` over the listener at `addr` (also used by
    /// `cfmapd-router`, whose accept loop has the same shape).
    pub(crate) fn new(flag: Arc<AtomicBool>, addr: std::net::SocketAddr) -> ShutdownHandle {
        ShutdownHandle { flag, addr }
    }

    /// Ask the server to stop accepting and drain its workers.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

impl CfmapServer {
    /// Bind to `config.addr` and build the shared engine.
    pub fn bind(config: &ServerConfig) -> std::io::Result<CfmapServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let engine = Arc::new(Engine::new(
            config.cache_capacity.max(1),
            config.cache_shards.max(1),
        ));
        if let Some(path) = &config.cache_load {
            let text = std::fs::read_to_string(path).map_err(|e| {
                std::io::Error::new(e.kind(), format!("--cache-load {path}: {e}"))
            })?;
            engine.load_snapshot(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("--cache-load {path}: {e}"),
                )
            })?;
        }
        // Registering at bind time makes the admission metrics visible
        // (at zero) in the very first `/metrics` scrape, before any
        // connection is shed or queued.
        let registry = Arc::clone(engine.metrics());
        let queue_depth = registry.gauge(
            "cfmapd_queue_depth",
            "Connections admitted and waiting for a worker",
            &[],
        );
        let requests_shed = registry.counter(
            "cfmapd_requests_shed_total",
            "Connections answered 503 because the admission queue was full",
            &[],
        );
        let drain_duration = registry.histogram(
            "cfmapd_drain_duration_seconds",
            "Time from shutdown request to the last worker exiting",
            &[],
            DEFAULT_LATENCY_BUCKETS_US,
        );
        Ok(CfmapServer {
            listener,
            engine,
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: Arc::new(AtomicU64::new(0)),
            workers: config.workers.max(1),
            log_json: config.log_json,
            queue_capacity: config.queue_capacity.max(1),
            drain_deadline: config.drain_deadline,
            fault_injection: config.fault_injection,
            max_requests_per_conn: config.max_requests_per_conn.max(1),
            queue_depth,
            requests_shed,
            drain_duration,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`CfmapServer::run`] from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle::new(Arc::clone(&self.shutdown), self.local_addr()?))
    }

    /// Accept and serve until shutdown is requested. Blocks the calling
    /// thread; returns once every worker has drained (bounded by the
    /// configured drain deadline — see [`ServerConfig::drain_deadline`]).
    pub fn run(self) -> std::io::Result<()> {
        // A *bounded* queue is the admission-control contract: at most
        // `queue_capacity` connections wait for a worker, and everything
        // beyond that is shed immediately with 503 + Retry-After rather
        // than buffered into an unbounded backlog the daemon can never
        // serve within anyone's deadline.
        let (tx, rx) = mpsc::sync_channel::<Conn>(self.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        // The background fitter promotes observed schedule families to
        // certificates off the request path. Detached on purpose: a fit
        // step can spend seconds solving probe instances, and shutdown
        // must not wait for it — the thread notices the flag at its next
        // step and exits on its own (the process exits regardless).
        {
            let engine = Arc::clone(&self.engine);
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    if !engine.family_fit_step() {
                        std::thread::sleep(FITTER_IDLE_NAP);
                    }
                }
            });
        }
        let mut pool = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&self.engine);
            let shutdown = Arc::clone(&self.shutdown);
            let requests = Arc::clone(&self.requests);
            let queue_depth = Arc::clone(&self.queue_depth);
            let workers = self.workers;
            let log_json = self.log_json;
            let fault_injection = self.fault_injection;
            let max_requests_per_conn = self.max_requests_per_conn;
            pool.push(std::thread::spawn(move || loop {
                // Holding the receiver lock only while popping keeps the
                // other workers runnable during request handling.
                let conn = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                let Ok(conn) = conn else { break };
                queue_depth.add(-1);
                // A panicking request must not kill the worker — after
                // `workers` such requests the daemon would still accept
                // connections but never answer them. `dispatch` already
                // converts its own panics to 500s; this guard covers the
                // I/O path too (no response then, but the worker lives).
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(
                        conn,
                        &engine,
                        &shutdown,
                        &requests,
                        &queue_depth,
                        workers,
                        log_json,
                        fault_injection,
                        max_requests_per_conn,
                    );
                }));
            }));
        }
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let conn = Conn { stream, accepted_us: clock::now_micros() };
            self.queue_depth.add(1);
            match tx.try_send(conn) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(conn)) => {
                    self.queue_depth.add(-1);
                    self.requests_shed.inc();
                    shed_connection(conn.stream);
                }
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    self.queue_depth.add(-1);
                    break;
                }
            }
        }
        // Graceful drain: closing the sender lets workers finish every
        // queued connection, then their recv() errors out. A watchdog
        // bounds the wait — past the drain deadline it cancels the
        // engine's searches, which winds in-flight requests down to
        // best-effort answers within one candidate's latency.
        let drain_started = clock::now_micros();
        drop(tx);
        let drained = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let drained = Arc::clone(&drained);
            let cancel = self.engine.cancel_token();
            let deadline = self.drain_deadline;
            std::thread::spawn(move || {
                let step = Duration::from_millis(25);
                let mut waited = Duration::ZERO;
                while waited < deadline {
                    if drained.load(Ordering::SeqCst) {
                        return;
                    }
                    let nap = step.min(deadline - waited);
                    std::thread::sleep(nap);
                    waited += nap;
                }
                if !drained.load(Ordering::SeqCst) {
                    cancel.cancel();
                }
            })
        };
        for worker in pool {
            let _ = worker.join();
        }
        drained.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        self.drain_duration
            .observe_micros(clock::now_micros().saturating_sub(drain_started));
        Ok(())
    }
}

/// Answer a shed connection with `503` + `Retry-After` on a short-lived
/// thread, so a slow client cannot stall the accept loop. The client's
/// request is drained (bounded, under socket timeouts) before the
/// response, so the kernel does not reset the connection with the 503
/// still unread.
fn shed_connection(stream: TcpStream) {
    std::thread::spawn(move || {
        let mut stream = stream;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        if let Ok(clone) = stream.try_clone() {
            let mut reader = BufReader::new(clone);
            let _ = read_request(&mut reader);
        }
        let body = Json::Obj(vec![
            ("status".into(), Json::Str("overloaded".into())),
            (
                "message".into(),
                Json::Str("admission queue full; retry after the Retry-After delay".into()),
            ),
        ])
        .serialize();
        let _ =
            write_response_extra(&mut stream, 503, CT_JSON, &body, &[("Retry-After", "1")], false);
    });
}

/// The route label a request is accounted under. Known routes keep
/// their path; everything else collapses into `"other"` so a client
/// probing random paths cannot grow the registry without bound.
fn route_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("POST", "/map") => "/map",
        ("POST", "/pareto") => "/pareto",
        ("POST", "/batch") => "/batch",
        ("GET", "/stats") => "/stats",
        ("GET", "/metrics") => "/metrics",
        ("GET", "/healthz") => "/healthz",
        ("GET", "/readyz") => "/readyz",
        ("GET", "/family") => "/family",
        ("POST", "/cache/clear") => "/cache/clear",
        ("GET" | "POST", "/cache/save") => "/cache/save",
        ("POST", "/shutdown") => "/shutdown",
        _ => "other",
    }
}

/// Serve one connection: parse, dispatch, answer — then, if the client
/// opted into keep-alive and the request parsed cleanly, loop for the
/// next request on the same socket (up to `max_requests_per_conn`).
/// Parse failures and shutdown always close: after a framing error the
/// stream position is unknown, and a draining server must release its
/// workers.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    conn: Conn,
    engine: &Engine,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    queue_depth: &Gauge,
    workers: usize,
    log_json: bool,
    fault_injection: bool,
    max_requests_per_conn: usize,
) {
    let Conn { stream, accepted_us } = conn;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    // The first request's deadline anchors at *accept* time (queueing
    // counts against it); later requests on a kept-alive connection
    // anchor when the server starts reading them.
    let mut anchor_us = accepted_us;
    let mut served = 0usize;
    loop {
        let started = Instant::now();
        let mut route = "unparsed";
        let mut req_line = (String::new(), String::new());
        let mut client_keep_alive = false;
        let (status, content_type, body) = match read_request(&mut reader) {
            // A bare shutdown poke (connect + close) — or a keep-alive
            // client hanging up between requests — answers nothing.
            Err(ReadError::Empty) => return,
            Err(ReadError::TooLarge) => (413, CT_JSON, error_body("request body too large")),
            Err(ReadError::Malformed(msg)) => (400, CT_JSON, error_body(&msg)),
            Ok(req) => {
                client_keep_alive = req.keep_alive;
                route = route_label(&req.method, &req.path);
                req_line = (req.method.clone(), req.path.clone());
                // Answer 500 instead of unwinding through the worker: the
                // engine's locks all tolerate poisoning (see `cache.rs`), so
                // serving can continue after a handler panic.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if fault_injection {
                        apply_fault(req.fault.as_deref());
                    }
                    dispatch(
                        &req.method,
                        &req.path,
                        &req.body,
                        engine,
                        shutdown,
                        requests,
                        queue_depth,
                        workers,
                        anchor_us,
                    )
                }))
                .unwrap_or_else(|_| {
                    let body = Json::Obj(vec![
                        ("status".into(), Json::Str("internal_error".into())),
                        ("message".into(), Json::Str("request handler panicked".into())),
                    ]);
                    (500, CT_JSON, body.serialize())
                })
            }
        };
        served += 1;
        requests.fetch_add(1, Ordering::Relaxed);
        let keep = client_keep_alive
            && route != "unparsed"
            && served < max_requests_per_conn
            && !shutdown.load(Ordering::SeqCst);
        let elapsed = started.elapsed();
        let status_text = status.to_string();
        let registry = engine.metrics();
        registry
            .counter(
                "cfmapd_requests_total",
                "Requests answered, by route and status",
                &[("route", route), ("status", &status_text)],
            )
            .inc();
        registry
            .histogram(
                "cfmapd_request_duration_seconds",
                "Request latency from first byte to response, by route",
                &[("route", route)],
                cfmap_core::metrics::DEFAULT_LATENCY_BUCKETS_US,
            )
            .observe(elapsed);
        let write_ok =
            write_response_extra(&mut stream, status, content_type, &body, &[], keep).is_ok();
        if log_json {
            access_log_line(&req_line.0, &req_line.1, status, elapsed, body.len());
        }
        if shutdown.load(Ordering::SeqCst) {
            // An accepted socket's local address is the listener's address
            // (they share the listening port), so one loopback connect is
            // enough to unblock the accept loop and let it see the flag.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            }
            return;
        }
        if !keep || !write_ok {
            return;
        }
        // Between requests a persistent connection waits on a short
        // idle clock, not the full request timeout.
        anchor_us = clock::now_micros();
        let _ = stream.set_read_timeout(Some(KEEPALIVE_IDLE_TIMEOUT));
    }
}

/// Emit one structured access-log line on stderr. The JSON serializer
/// handles escaping, so hostile request paths cannot corrupt the log
/// stream.
fn access_log_line(method: &str, path: &str, status: u16, elapsed: Duration, bytes: usize) {
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| i64::try_from(d.as_millis()).unwrap_or(i64::MAX))
        .unwrap_or(0);
    let line = Json::Obj(vec![
        ("ts_ms".into(), Json::Int(ts_ms)),
        ("method".into(), Json::Str(method.into())),
        ("path".into(), Json::Str(path.into())),
        ("status".into(), Json::Int(i64::from(status))),
        (
            "duration_us".into(),
            Json::Int(i64::try_from(elapsed.as_micros()).unwrap_or(i64::MAX)),
        ),
        ("bytes".into(), Json::Int(i64::try_from(bytes).unwrap_or(i64::MAX))),
    ]);
    eprintln!("{}", line.serialize());
}

/// Execute an injected fault (only reached when the server was started
/// with fault injection enabled). `panic` unwinds inside the dispatch
/// guard — the request answers 500 and the worker survives; `stall-ms:N`
/// parks the worker for `N` milliseconds (capped at 10 s) to simulate a
/// wedged search.
fn apply_fault(fault: Option<&str>) {
    match fault {
        Some("panic") => panic!("injected fault: panic"),
        Some(spec) => {
            if let Some(ms) = spec.strip_prefix("stall-ms:").and_then(|v| v.parse::<u64>().ok()) {
                std::thread::sleep(Duration::from_millis(ms.min(10_000)));
            }
        }
        None => {}
    }
}

/// Route a parsed request. Returns status, `Content-Type`, and body.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    method: &str,
    path: &str,
    body: &str,
    engine: &Engine,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    queue_depth: &Gauge,
    workers: usize,
    accepted_us: u64,
) -> (u16, &'static str, String) {
    match (method, path) {
        ("POST", "/map") => match MapRequest::from_str(body) {
            Ok(req) => {
                let resp = engine.resolve_anchored(&req, accepted_us);
                (resp.http_status(), CT_JSON, resp.to_json().serialize())
            }
            Err(e) => {
                let resp = MapResponse::BadRequest { msg: e.msg };
                (resp.http_status(), CT_JSON, resp.to_json().serialize())
            }
        },
        ("POST", "/pareto") => match ParetoRequest::from_str(body) {
            Ok(req) => {
                let resp = engine.pareto(&req);
                (resp.http_status(), CT_JSON, resp.to_json().serialize())
            }
            Err(e) => {
                let resp = ParetoResponse::BadRequest { msg: e.msg };
                (resp.http_status(), CT_JSON, resp.to_json().serialize())
            }
        },
        ("POST", "/batch") => match parse_batch(body) {
            Ok(reqs) => {
                let (responses, solves) = engine.resolve_batch_anchored(&reqs, accepted_us);
                let json = Json::Obj(vec![
                    (
                        "responses".into(),
                        Json::Arr(responses.iter().map(MapResponse::to_json).collect()),
                    ),
                    ("distinct_solves".into(), Json::Int(solves as i64)),
                ]);
                (200, CT_JSON, json.serialize())
            }
            Err(msg) => (400, CT_JSON, error_body(&msg)),
        },
        ("GET", "/stats") => {
            let cache = engine.cache_stats();
            let search = engine.search_stats();
            let family = engine.family_stats();
            let json = Json::Obj(vec![
                ("status".into(), Json::Str("ok".into())),
                ("requests".into(), Json::Int(requests.load(Ordering::Relaxed) as i64)),
                ("workers".into(), Json::Int(workers as i64)),
                (
                    "cache".into(),
                    Json::Obj(vec![
                        ("hits".into(), Json::Int(cache.hits as i64)),
                        ("misses".into(), Json::Int(cache.misses as i64)),
                        ("evictions".into(), Json::Int(cache.evictions as i64)),
                        ("entries".into(), Json::Int(cache.entries as i64)),
                        ("capacity".into(), Json::Int(cache.capacity as i64)),
                        ("shards".into(), Json::Int(cache.shards as i64)),
                    ]),
                ),
                (
                    "search".into(),
                    Json::Obj(vec![
                        ("solves".into(), Json::Int(search.solves as i64)),
                        (
                            "candidates_enumerated".into(),
                            Json::Int(search.candidates_enumerated as i64),
                        ),
                        (
                            "candidates_accepted".into(),
                            Json::Int(search.candidates_accepted as i64),
                        ),
                        (
                            "hnf_computations".into(),
                            Json::Int(search.hnf_computations as i64),
                        ),
                        (
                            "fallback_screened".into(),
                            Json::Int(search.fallback_screened as i64),
                        ),
                    ]),
                ),
                ("family".into(), family_stats_json(&family)),
            ]);
            (200, CT_JSON, json.serialize())
        }
        ("GET", "/metrics") => (200, CT_METRICS, engine.metrics().render_prometheus()),
        ("GET", "/healthz") => {
            // Liveness plus the routing signals a fleet front-end needs:
            // a draining daemon is alive (do not restart it) but should
            // stop receiving traffic, and the queue depth says how
            // saturated admission is *before* sheds start.
            let draining = shutdown.load(Ordering::SeqCst);
            let json = Json::Obj(vec![
                (
                    "status".into(),
                    Json::Str(if draining { "draining" } else { "ok" }.into()),
                ),
                ("draining".into(), Json::Bool(draining)),
                ("queue_depth".into(), Json::Int(queue_depth.get())),
                ("workers".into(), Json::Int(workers as i64)),
            ]);
            (200, CT_JSON, json.serialize())
        }
        ("GET", "/readyz") => {
            if shutdown.load(Ordering::SeqCst) {
                let json = Json::Obj(vec![("status".into(), Json::Str("draining".into()))]);
                (503, CT_JSON, json.serialize())
            } else {
                let json = Json::Obj(vec![("status".into(), Json::Str("ok".into()))]);
                (200, CT_JSON, json.serialize())
            }
        }
        ("GET", "/family") => {
            let stats = engine.family_stats();
            let families = Json::Arr(
                engine
                    .family_certificates()
                    .iter()
                    .filter_map(|c| {
                        let mut json = certificate_json(c)?;
                        if let Json::Obj(fields) = &mut json {
                            fields.push((
                                "fully_symbolic".into(),
                                Json::Bool(c.fully_symbolic()),
                            ));
                        }
                        Some(json)
                    })
                    .collect(),
            );
            let mut fields = vec![("status".into(), Json::Str("ok".into()))];
            if let Json::Obj(stat_fields) = family_stats_json(&stats) {
                fields.extend(stat_fields);
            }
            fields.push(("families".into(), families));
            (200, CT_JSON, Json::Obj(fields).serialize())
        }
        ("POST", "/cache/clear") => {
            let cleared = engine.clear_cache();
            (
                200,
                CT_JSON,
                Json::Obj(vec![("cleared".into(), Json::Int(cleared as i64))]).serialize(),
            )
        }
        // The snapshot travels as plain text: `cfmap client --get
        // /cache/save > warm.snap` on one shard, `--cache-load warm.snap`
        // on the next.
        ("GET", "/cache/save") => (200, CT_SNAPSHOT, engine.snapshot().encode()),
        ("POST", "/cache/save") => {
            let path = parse(body)
                .ok()
                .and_then(|j| j.get("path").and_then(Json::as_str).map(str::to_string));
            match path {
                None => (400, CT_JSON, error_body("body must be {\"path\": \"...\"}")),
                Some(path) => {
                    let snap = engine.snapshot();
                    let (entries, families) = (snap.cache.len(), snap.families.len());
                    let text = snap.encode();
                    match write_atomic(std::path::Path::new(&path), &text) {
                        Ok(()) => (
                            200,
                            CT_JSON,
                            Json::Obj(vec![
                                ("status".into(), Json::Str("saved".into())),
                                ("path".into(), Json::Str(path)),
                                (
                                    "bytes".into(),
                                    Json::Int(i64::try_from(text.len()).unwrap_or(i64::MAX)),
                                ),
                                ("entries".into(), Json::Int(entries as i64)),
                                ("families".into(), Json::Int(families as i64)),
                            ])
                            .serialize(),
                        ),
                        Err(e) => (
                            500,
                            CT_JSON,
                            Json::Obj(vec![
                                ("status".into(), Json::Str("io_error".into())),
                                ("message".into(), Json::Str(format!("{path}: {e}"))),
                            ])
                            .serialize(),
                        ),
                    }
                }
            }
        }
        ("POST", "/shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            (
                200,
                CT_JSON,
                Json::Obj(vec![("status".into(), Json::Str("shutting_down".into()))])
                    .serialize(),
            )
        }
        _ => (404, CT_JSON, error_body(&format!("no route {method} {path}"))),
    }
}

/// The family-catalogue counters as a JSON object (shared by `/stats`
/// and `/family`).
fn family_stats_json(f: &crate::family_store::FamilyStats) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Int(i64::try_from(f.hits).unwrap_or(i64::MAX))),
        ("certificates".into(), Json::Int(i64::try_from(f.certificates).unwrap_or(i64::MAX))),
        ("observing".into(), Json::Int(i64::try_from(f.observing).unwrap_or(i64::MAX))),
        ("rejected".into(), Json::Int(i64::try_from(f.rejected).unwrap_or(i64::MAX))),
        ("fit_certified".into(), Json::Int(i64::try_from(f.fit_certified).unwrap_or(i64::MAX))),
        ("fit_failed".into(), Json::Int(i64::try_from(f.fit_failed).unwrap_or(i64::MAX))),
    ])
}

/// Parse `{"requests": […]}`.
fn parse_batch(body: &str) -> Result<Vec<MapRequest>, String> {
    let json = parse(body).map_err(|e| e.to_string())?;
    let arr = json
        .get("requests")
        .and_then(Json::as_arr)
        .ok_or("batch body must be {\"requests\": [...]}")?;
    arr.iter()
        .map(|v| MapRequest::from_json(v).map_err(|e| e.msg))
        .collect()
}

fn error_body(msg: &str) -> String {
    Json::Obj(vec![
        ("status".into(), Json::Str("bad_request".into())),
        ("message".into(), Json::Str(msg.into())),
    ])
    .serialize()
}
