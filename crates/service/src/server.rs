//! The `cfmapd` HTTP server.
//!
//! Plain `std`: a `TcpListener` accept loop feeds accepted connections
//! through a *bounded* `sync_channel` to a fixed pool of worker
//! threads, each of which parses one HTTP/1.1 request, dispatches it
//! against the shared [`Engine`], and answers with `Connection: close`.
//! When the admission queue is full, new connections are shed with
//! `503` + `Retry-After` rather than buffered without bound. No async
//! runtime, no HTTP library — the protocol subset needed (request line,
//! headers, `Content-Length` body) is ~100 lines.
//!
//! Routes:
//!
//! | route | body | answer |
//! |---|---|---|
//! | `POST /map` | a `MapRequest` | a `MapResponse` |
//! | `POST /batch` | `{"requests": […]}` | `{"responses": […], "distinct_solves": n}` |
//! | `GET /stats` | — | cache + search + server counters |
//! | `GET /metrics` | — | Prometheus text exposition of the registry |
//! | `GET /healthz` | — | `{"status":"ok"}` |
//! | `POST /cache/clear` | — | `{"cleared": n}` |
//! | `POST /shutdown` | — | `{"status":"shutting_down"}`, then the listener drains and exits |
//!
//! Shutdown is cooperative: `POST /shutdown` (or [`ShutdownHandle::shutdown`])
//! sets an atomic flag and pokes the listener with a loopback connection so
//! the blocking `accept` observes it. `std` exposes no signal API, so
//! SIGTERM/ctrl-C handling is delegated to the process supervisor or the
//! binary's `--watch-stdin` mode (see `src/bin/cfmapd.rs`).

use crate::engine::Engine;
use crate::json::{parse, Json};
use crate::wire::{MapRequest, MapResponse};
use cfmap_core::budget::clock;
use cfmap_core::metrics::{Counter, Gauge, Histogram, DEFAULT_LATENCY_BUCKETS_US};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};
use std::str::FromStr;

/// Request bodies above this size are refused with `413` — mapping
/// requests are a few hundred bytes; megabytes signal a confused client.
const MAX_BODY_BYTES: usize = 1 << 20;

/// The request line and header section together may not exceed this many
/// bytes. Without a bound, `read_line` would buffer a newline-free byte
/// stream indefinitely (`MAX_BODY_BYTES` only guards the body).
const MAX_HEAD_BYTES: usize = 64 << 10;

/// How long a worker waits for a slow client before abandoning the
/// connection.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// `Content-Type` of every JSON answer.
const CT_JSON: &str = "application/json";

/// `Content-Type` of the `/metrics` answer (Prometheus text exposition
/// format).
const CT_METRICS: &str = "text/plain; version=0.0.4";

/// Server configuration (all fields have serviceable defaults).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Design-cache capacity (entries).
    pub cache_capacity: usize,
    /// Design-cache shards.
    pub cache_shards: usize,
    /// Emit one structured JSON access-log line per request on stderr
    /// (`--log-format json`).
    pub log_json: bool,
    /// Admission-queue capacity: connections accepted but not yet
    /// claimed by a worker. When full, new connections are shed with
    /// `503` + `Retry-After` instead of buffering without bound.
    pub queue_capacity: usize,
    /// How long shutdown waits for queued and in-flight requests before
    /// cancelling the engine's searches so workers can exit.
    pub drain_deadline: Duration,
    /// Honor `X-Cfmapd-Fault` request headers (worker panics, stalls).
    /// Test-only; keep off in production.
    pub fault_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_capacity: 256,
            cache_shards: 8,
            log_json: false,
            queue_capacity: 64,
            drain_deadline: Duration::from_secs(5),
            fault_injection: false,
        }
    }
}

/// A bound (but not yet running) server.
pub struct CfmapServer {
    listener: TcpListener,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    workers: usize,
    log_json: bool,
    queue_capacity: usize,
    drain_deadline: Duration,
    fault_injection: bool,
    queue_depth: Arc<Gauge>,
    requests_shed: Arc<Counter>,
    drain_duration: Arc<Histogram>,
}

/// An accepted connection, stamped with its accept time on the budget
/// clock. Request deadlines anchor here so time spent waiting in the
/// admission queue counts against the caller's `deadline_ms`.
struct Conn {
    stream: TcpStream,
    accepted_us: u64,
}

/// Lets another thread stop a running [`CfmapServer`].
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Ask the server to stop accepting and drain its workers.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

impl CfmapServer {
    /// Bind to `config.addr` and build the shared engine.
    pub fn bind(config: &ServerConfig) -> std::io::Result<CfmapServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let engine = Arc::new(Engine::new(
            config.cache_capacity.max(1),
            config.cache_shards.max(1),
        ));
        // Registering at bind time makes the admission metrics visible
        // (at zero) in the very first `/metrics` scrape, before any
        // connection is shed or queued.
        let registry = Arc::clone(engine.metrics());
        let queue_depth = registry.gauge(
            "cfmapd_queue_depth",
            "Connections admitted and waiting for a worker",
            &[],
        );
        let requests_shed = registry.counter(
            "cfmapd_requests_shed_total",
            "Connections answered 503 because the admission queue was full",
            &[],
        );
        let drain_duration = registry.histogram(
            "cfmapd_drain_duration_seconds",
            "Time from shutdown request to the last worker exiting",
            &[],
            DEFAULT_LATENCY_BUCKETS_US,
        );
        Ok(CfmapServer {
            listener,
            engine,
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: Arc::new(AtomicU64::new(0)),
            workers: config.workers.max(1),
            log_json: config.log_json,
            queue_capacity: config.queue_capacity.max(1),
            drain_deadline: config.drain_deadline,
            fault_injection: config.fault_injection,
            queue_depth,
            requests_shed,
            drain_duration,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`CfmapServer::run`] from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle { flag: Arc::clone(&self.shutdown), addr: self.local_addr()? })
    }

    /// Accept and serve until shutdown is requested. Blocks the calling
    /// thread; returns once every worker has drained (bounded by the
    /// configured drain deadline — see [`ServerConfig::drain_deadline`]).
    pub fn run(self) -> std::io::Result<()> {
        // A *bounded* queue is the admission-control contract: at most
        // `queue_capacity` connections wait for a worker, and everything
        // beyond that is shed immediately with 503 + Retry-After rather
        // than buffered into an unbounded backlog the daemon can never
        // serve within anyone's deadline.
        let (tx, rx) = mpsc::sync_channel::<Conn>(self.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&self.engine);
            let shutdown = Arc::clone(&self.shutdown);
            let requests = Arc::clone(&self.requests);
            let queue_depth = Arc::clone(&self.queue_depth);
            let workers = self.workers;
            let log_json = self.log_json;
            let fault_injection = self.fault_injection;
            pool.push(std::thread::spawn(move || loop {
                // Holding the receiver lock only while popping keeps the
                // other workers runnable during request handling.
                let conn = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                let Ok(conn) = conn else { break };
                queue_depth.add(-1);
                requests.fetch_add(1, Ordering::Relaxed);
                // A panicking request must not kill the worker — after
                // `workers` such requests the daemon would still accept
                // connections but never answer them. `dispatch` already
                // converts its own panics to 500s; this guard covers the
                // I/O path too (no response then, but the worker lives).
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(
                        conn,
                        &engine,
                        &shutdown,
                        &requests,
                        workers,
                        log_json,
                        fault_injection,
                    );
                }));
            }));
        }
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let conn = Conn { stream, accepted_us: clock::now_micros() };
            self.queue_depth.add(1);
            match tx.try_send(conn) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(conn)) => {
                    self.queue_depth.add(-1);
                    self.requests_shed.inc();
                    shed_connection(conn.stream);
                }
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    self.queue_depth.add(-1);
                    break;
                }
            }
        }
        // Graceful drain: closing the sender lets workers finish every
        // queued connection, then their recv() errors out. A watchdog
        // bounds the wait — past the drain deadline it cancels the
        // engine's searches, which winds in-flight requests down to
        // best-effort answers within one candidate's latency.
        let drain_started = clock::now_micros();
        drop(tx);
        let drained = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let drained = Arc::clone(&drained);
            let cancel = self.engine.cancel_token();
            let deadline = self.drain_deadline;
            std::thread::spawn(move || {
                let step = Duration::from_millis(25);
                let mut waited = Duration::ZERO;
                while waited < deadline {
                    if drained.load(Ordering::SeqCst) {
                        return;
                    }
                    let nap = step.min(deadline - waited);
                    std::thread::sleep(nap);
                    waited += nap;
                }
                if !drained.load(Ordering::SeqCst) {
                    cancel.cancel();
                }
            })
        };
        for worker in pool {
            let _ = worker.join();
        }
        drained.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        self.drain_duration
            .observe_micros(clock::now_micros().saturating_sub(drain_started));
        Ok(())
    }
}

/// Answer a shed connection with `503` + `Retry-After` on a short-lived
/// thread, so a slow client cannot stall the accept loop. The client's
/// request is drained (bounded, under socket timeouts) before the
/// response, so the kernel does not reset the connection with the 503
/// still unread.
fn shed_connection(stream: TcpStream) {
    std::thread::spawn(move || {
        let mut stream = stream;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        if let Ok(clone) = stream.try_clone() {
            let mut reader = BufReader::new(clone);
            let _ = read_request(&mut reader);
        }
        let body = Json::Obj(vec![
            ("status".into(), Json::Str("overloaded".into())),
            (
                "message".into(),
                Json::Str("admission queue full; retry after the Retry-After delay".into()),
            ),
        ])
        .serialize();
        let _ = write_response_extra(&mut stream, 503, CT_JSON, &body, &[("Retry-After", "1")]);
    });
}

/// The route label a request is accounted under. Known routes keep
/// their path; everything else collapses into `"other"` so a client
/// probing random paths cannot grow the registry without bound.
fn route_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("POST", "/map") => "/map",
        ("POST", "/batch") => "/batch",
        ("GET", "/stats") => "/stats",
        ("GET", "/metrics") => "/metrics",
        ("GET", "/healthz") => "/healthz",
        ("POST", "/cache/clear") => "/cache/clear",
        ("POST", "/shutdown") => "/shutdown",
        _ => "other",
    }
}

/// Serve one connection: parse, dispatch, answer, close.
fn handle_connection(
    conn: Conn,
    engine: &Engine,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    workers: usize,
    log_json: bool,
    fault_injection: bool,
) {
    let Conn { stream, accepted_us } = conn;
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let mut route = "unparsed";
    let mut req_line = (String::new(), String::new());
    let (status, content_type, body) = match read_request(&mut reader) {
        // A bare shutdown poke (connect + close) arrives as an empty
        // request; answer nothing.
        Err(ReadError::Empty) => return,
        Err(ReadError::TooLarge) => (413, CT_JSON, error_body("request body too large")),
        Err(ReadError::Malformed(msg)) => (400, CT_JSON, error_body(&msg)),
        Ok(req) => {
            route = route_label(&req.method, &req.path);
            req_line = (req.method.clone(), req.path.clone());
            // Answer 500 instead of unwinding through the worker: the
            // engine's locks all tolerate poisoning (see `cache.rs`), so
            // serving can continue after a handler panic.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if fault_injection {
                    apply_fault(req.fault.as_deref());
                }
                dispatch(
                    &req.method,
                    &req.path,
                    &req.body,
                    engine,
                    shutdown,
                    requests,
                    workers,
                    accepted_us,
                )
            }))
            .unwrap_or_else(|_| {
                let body = Json::Obj(vec![
                    ("status".into(), Json::Str("internal_error".into())),
                    ("message".into(), Json::Str("request handler panicked".into())),
                ]);
                (500, CT_JSON, body.serialize())
            })
        }
    };
    let elapsed = started.elapsed();
    let status_text = status.to_string();
    let registry = engine.metrics();
    registry
        .counter(
            "cfmapd_requests_total",
            "Requests answered, by route and status",
            &[("route", route), ("status", &status_text)],
        )
        .inc();
    registry
        .histogram(
            "cfmapd_request_duration_seconds",
            "Request latency from first byte to response, by route",
            &[("route", route)],
            cfmap_core::metrics::DEFAULT_LATENCY_BUCKETS_US,
        )
        .observe(elapsed);
    let _ = write_response(&mut stream, status, content_type, &body);
    if log_json {
        access_log_line(&req_line.0, &req_line.1, status, elapsed, body.len());
    }
    if shutdown.load(Ordering::SeqCst) {
        // An accepted socket's local address is the listener's address
        // (they share the listening port), so one loopback connect is
        // enough to unblock the accept loop and let it see the flag.
        if let Ok(addr) = stream.local_addr() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }
}

/// Emit one structured access-log line on stderr. The JSON serializer
/// handles escaping, so hostile request paths cannot corrupt the log
/// stream.
fn access_log_line(method: &str, path: &str, status: u16, elapsed: Duration, bytes: usize) {
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| i64::try_from(d.as_millis()).unwrap_or(i64::MAX))
        .unwrap_or(0);
    let line = Json::Obj(vec![
        ("ts_ms".into(), Json::Int(ts_ms)),
        ("method".into(), Json::Str(method.into())),
        ("path".into(), Json::Str(path.into())),
        ("status".into(), Json::Int(i64::from(status))),
        (
            "duration_us".into(),
            Json::Int(i64::try_from(elapsed.as_micros()).unwrap_or(i64::MAX)),
        ),
        ("bytes".into(), Json::Int(i64::try_from(bytes).unwrap_or(i64::MAX))),
    ]);
    eprintln!("{}", line.serialize());
}

/// Execute an injected fault (only reached when the server was started
/// with fault injection enabled). `panic` unwinds inside the dispatch
/// guard — the request answers 500 and the worker survives; `stall-ms:N`
/// parks the worker for `N` milliseconds (capped at 10 s) to simulate a
/// wedged search.
fn apply_fault(fault: Option<&str>) {
    match fault {
        Some("panic") => panic!("injected fault: panic"),
        Some(spec) => {
            if let Some(ms) = spec.strip_prefix("stall-ms:").and_then(|v| v.parse::<u64>().ok()) {
                std::thread::sleep(Duration::from_millis(ms.min(10_000)));
            }
        }
        None => {}
    }
}

/// Route a parsed request. Returns status, `Content-Type`, and body.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    method: &str,
    path: &str,
    body: &str,
    engine: &Engine,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    workers: usize,
    accepted_us: u64,
) -> (u16, &'static str, String) {
    match (method, path) {
        ("POST", "/map") => match MapRequest::from_str(body) {
            Ok(req) => {
                let resp = engine.resolve_anchored(&req, accepted_us);
                (resp.http_status(), CT_JSON, resp.to_json().serialize())
            }
            Err(e) => {
                let resp = MapResponse::BadRequest { msg: e.msg };
                (resp.http_status(), CT_JSON, resp.to_json().serialize())
            }
        },
        ("POST", "/batch") => match parse_batch(body) {
            Ok(reqs) => {
                let (responses, solves) = engine.resolve_batch_anchored(&reqs, accepted_us);
                let json = Json::Obj(vec![
                    (
                        "responses".into(),
                        Json::Arr(responses.iter().map(MapResponse::to_json).collect()),
                    ),
                    ("distinct_solves".into(), Json::Int(solves as i64)),
                ]);
                (200, CT_JSON, json.serialize())
            }
            Err(msg) => (400, CT_JSON, error_body(&msg)),
        },
        ("GET", "/stats") => {
            let cache = engine.cache_stats();
            let search = engine.search_stats();
            let json = Json::Obj(vec![
                ("status".into(), Json::Str("ok".into())),
                ("requests".into(), Json::Int(requests.load(Ordering::Relaxed) as i64)),
                ("workers".into(), Json::Int(workers as i64)),
                (
                    "cache".into(),
                    Json::Obj(vec![
                        ("hits".into(), Json::Int(cache.hits as i64)),
                        ("misses".into(), Json::Int(cache.misses as i64)),
                        ("evictions".into(), Json::Int(cache.evictions as i64)),
                        ("entries".into(), Json::Int(cache.entries as i64)),
                        ("capacity".into(), Json::Int(cache.capacity as i64)),
                        ("shards".into(), Json::Int(cache.shards as i64)),
                    ]),
                ),
                (
                    "search".into(),
                    Json::Obj(vec![
                        ("solves".into(), Json::Int(search.solves as i64)),
                        (
                            "candidates_enumerated".into(),
                            Json::Int(search.candidates_enumerated as i64),
                        ),
                        (
                            "candidates_accepted".into(),
                            Json::Int(search.candidates_accepted as i64),
                        ),
                        (
                            "hnf_computations".into(),
                            Json::Int(search.hnf_computations as i64),
                        ),
                        (
                            "fallback_screened".into(),
                            Json::Int(search.fallback_screened as i64),
                        ),
                    ]),
                ),
            ]);
            (200, CT_JSON, json.serialize())
        }
        ("GET", "/metrics") => (200, CT_METRICS, engine.metrics().render_prometheus()),
        ("GET", "/healthz") => (
            200,
            CT_JSON,
            Json::Obj(vec![("status".into(), Json::Str("ok".into()))]).serialize(),
        ),
        ("POST", "/cache/clear") => {
            let cleared = engine.clear_cache();
            (
                200,
                CT_JSON,
                Json::Obj(vec![("cleared".into(), Json::Int(cleared as i64))]).serialize(),
            )
        }
        ("POST", "/shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            (
                200,
                CT_JSON,
                Json::Obj(vec![("status".into(), Json::Str("shutting_down".into()))])
                    .serialize(),
            )
        }
        _ => (404, CT_JSON, error_body(&format!("no route {method} {path}"))),
    }
}

/// Parse `{"requests": […]}`.
fn parse_batch(body: &str) -> Result<Vec<MapRequest>, String> {
    let json = parse(body).map_err(|e| e.to_string())?;
    let arr = json
        .get("requests")
        .and_then(Json::as_arr)
        .ok_or("batch body must be {\"requests\": [...]}")?;
    arr.iter()
        .map(|v| MapRequest::from_json(v).map_err(|e| e.msg))
        .collect()
}

fn error_body(msg: &str) -> String {
    Json::Obj(vec![
        ("status".into(), Json::Str("bad_request".into())),
        ("message".into(), Json::Str(msg.into())),
    ])
    .serialize()
}

enum ReadError {
    /// Connection closed before a request line (shutdown poke).
    Empty,
    TooLarge,
    Malformed(String),
}

/// `read_line`, but never buffering more than `limit` bytes: reading
/// stops at the first newline or at `limit + 1` bytes, whichever comes
/// first, so a client streaming newline-free bytes cannot grow memory.
/// Returns `Err(TooLarge)` when the line exceeds `limit`.
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
) -> Result<Option<String>, ReadError> {
    let mut line = String::new();
    match reader.by_ref().take(limit as u64 + 1).read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(ReadError::Malformed(format!("read failed: {e}"))),
    }
    // `take` capped the read at limit + 1 bytes: a longer "line" means
    // no newline arrived within the budget.
    if line.len() > limit {
        return Err(ReadError::TooLarge);
    }
    Ok(Some(line))
}

/// A parsed HTTP request: method, path, body, and the optional
/// `X-Cfmapd-Fault` header (honored only under fault injection).
struct Request {
    method: String,
    path: String,
    body: String,
    fault: Option<String>,
}

/// Read one `METHOD /path HTTP/1.x` request with an optional
/// `Content-Length` body. The head (request line + headers) is bounded
/// by [`MAX_HEAD_BYTES`], the body by [`MAX_BODY_BYTES`].
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let line = match read_line_limited(reader, head_budget) {
        Ok(Some(line)) => line,
        Ok(None) | Err(ReadError::Malformed(_)) => return Err(ReadError::Empty),
        Err(e) => return Err(e),
    };
    head_budget -= line.len().min(head_budget);
    if line.trim().is_empty() {
        return Err(ReadError::Empty);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(ReadError::Malformed(format!("bad request line {:?}", line.trim())));
    }
    let mut content_length: Option<usize> = None;
    let mut fault: Option<String> = None;
    loop {
        let header = match read_line_limited(reader, head_budget)? {
            None => break,
            Some(h) => h,
        };
        head_budget -= header.len().min(head_budget);
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad Content-Length".into()))?;
                // Duplicate Content-Length headers are a request-smuggling
                // staple: the framing depends on which copy a parser
                // honours. Conflicting copies are refused outright;
                // RFC 9110 §8.6 allows identical repeats.
                match content_length {
                    Some(prev) if prev != parsed => {
                        return Err(ReadError::Malformed(
                            "conflicting Content-Length headers".into(),
                        ));
                    }
                    _ => content_length = Some(parsed),
                }
            } else if name.eq_ignore_ascii_case("x-cfmapd-fault") {
                fault = Some(value.trim().to_string());
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ReadError::Malformed(format!("body read failed: {e}")))?;
    String::from_utf8(body)
        .map(|b| Request { method, path, body: b, fault })
        .map_err(|_| ReadError::Malformed("body is not UTF-8".into()))
}

/// Write a `Connection: close` HTTP/1.1 response.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_extra(stream, status, content_type, body, &[])
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on a shed `503`).
fn write_response_extra(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
