//! Versioned, checksummed persistence of the warm-start state.
//!
//! A snapshot carries the design cache (canonical keys → solved
//! outcomes) and the family catalogue (affine-in-μ certificates) in one
//! hand-rolled text format:
//!
//! ```text
//! cfmapsnap v1 digest=<16 hex> checksum=<16 hex> bytes=<len>
//! {"cache":[…],"families":[…]}
//! ```
//!
//! Three header fields gate the load, each with a precise
//! [`CfmapError::SnapshotMismatch`] on disagreement:
//!
//! * **version** — the format itself;
//! * **digest** — [`cfmap_core::canon_fingerprint`], a hash of the
//!   canonicalization's observable behavior. Cache keys are canonical
//!   problems; loading keys minted under a *different* canonicalization
//!   would silently serve wrong designs, so an incompatible build
//!   refuses the file outright;
//! * **checksum** — FNV-1a over the body bytes, with the byte count
//!   alongside, so truncated or bit-flipped files fail loudly.
//!
//! Writes are atomic (temp file + rename in the destination directory),
//! so a crash mid-save can never leave a half-written snapshot where a
//! restarting daemon would find it. The format is plain text on purpose:
//! a snapshot is fleet-portable operational data (`cfmap client --get
//! /cache/save > warm.snap`, ship `warm.snap` to new shards), and ops
//! can eyeball it.

use crate::engine::{CacheKey, CachedOutcome};
use crate::json::{parse, Json};
use crate::wire::{certification_from_json, certification_to_json};
use cfmap_core::family::{
    Discharge, FamilyCertificate, FamilyKey, FamilyTemplate, ProofObligation,
};
use cfmap_core::{canon_fingerprint, CanonicalProblem, CfmapError};
use cfmap_intlin::AffineInt;
use std::io::Write as _;
use std::path::Path;

/// Snapshot format version (the `v1` in the header).
pub const SNAPSHOT_VERSION: u32 = 1;

/// The magic leading the header line.
const MAGIC: &str = "cfmapsnap";

/// The warm-start state of one daemon, decoupled from live stores.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Design-cache entries, oldest-first (restore order preserves the
    /// LRU preference when the restoring cache is smaller).
    pub cache: Vec<(CacheKey, CachedOutcome)>,
    /// Family certificates.
    pub families: Vec<FamilyCertificate>,
}

/// FNV-1a over raw bytes — same constants as the router's key hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x00000100000001b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mismatch(field: &str, expected: impl Into<String>, actual: impl Into<String>) -> CfmapError {
    CfmapError::SnapshotMismatch {
        field: field.into(),
        expected: expected.into(),
        actual: actual.into(),
    }
}

impl Snapshot {
    /// Serialize: header line + JSON body.
    pub fn encode(&self) -> String {
        let body = self.body_json().serialize();
        let digest = canon_fingerprint();
        let checksum = fnv1a(body.as_bytes());
        format!(
            "{MAGIC} v{SNAPSHOT_VERSION} digest={digest:016x} checksum={checksum:016x} bytes={}\n{body}",
            body.len()
        )
    }

    /// Parse and verify a snapshot produced by [`Snapshot::encode`].
    /// Every disagreement — format, version, canonical-key digest,
    /// checksum, body shape — is a precise
    /// [`CfmapError::SnapshotMismatch`].
    pub fn decode(text: &str) -> Result<Snapshot, CfmapError> {
        let (header, body) = text
            .split_once('\n')
            .ok_or_else(|| mismatch("format", "header line + body", "single line"))?;
        let tokens: Vec<&str> = header.split_whitespace().collect();
        if tokens.first() != Some(&MAGIC) {
            return Err(mismatch(
                "format",
                format!("{MAGIC} header"),
                tokens.first().copied().unwrap_or("<empty>"),
            ));
        }
        let version = tokens.get(1).copied().unwrap_or("<missing>");
        let expected_version = format!("v{SNAPSHOT_VERSION}");
        if version != expected_version {
            return Err(mismatch("version", expected_version, version));
        }
        let field = |name: &str| -> Result<String, CfmapError> {
            tokens
                .iter()
                .find_map(|t| t.strip_prefix(&format!("{name}=")))
                .map(str::to_string)
                .ok_or_else(|| mismatch(name, format!("a {name}= header field"), "<missing>"))
        };
        let digest = field("digest")?;
        let expected_digest = format!("{:016x}", canon_fingerprint());
        if digest != expected_digest {
            return Err(mismatch("digest", expected_digest, digest));
        }
        let bytes = field("bytes")?;
        let actual_len = body.len().to_string();
        if bytes != actual_len {
            return Err(mismatch("bytes", bytes, actual_len));
        }
        let checksum = field("checksum")?;
        let actual_sum = format!("{:016x}", fnv1a(body.as_bytes()));
        if checksum != actual_sum {
            return Err(mismatch("checksum", checksum, actual_sum));
        }
        let json = parse(body).map_err(|e| mismatch("body", "valid JSON", e.to_string()))?;
        Snapshot::from_body(&json)
    }

    fn body_json(&self) -> Json {
        let cache = Json::Arr(
            self.cache
                .iter()
                .map(|(k, v)| {
                    Json::Obj(vec![
                        ("key".into(), cache_key_json(k)),
                        ("outcome".into(), outcome_json(v)),
                    ])
                })
                .collect(),
        );
        let families = Json::Arr(self.families.iter().filter_map(certificate_json).collect());
        Json::Obj(vec![("cache".into(), cache), ("families".into(), families)])
    }

    fn from_body(v: &Json) -> Result<Snapshot, CfmapError> {
        let body = |what: &str| mismatch("body", what, "other");
        let cache = v
            .get("cache")
            .and_then(Json::as_arr)
            .ok_or_else(|| body("a \"cache\" array"))?
            .iter()
            .map(|entry| {
                let key = cache_key_from(
                    entry.get("key").ok_or_else(|| body("cache entry with \"key\""))?,
                )?;
                let outcome = outcome_from(
                    entry.get("outcome").ok_or_else(|| body("cache entry with \"outcome\""))?,
                )?;
                Ok((key, outcome))
            })
            .collect::<Result<Vec<_>, CfmapError>>()?;
        let families = v
            .get("families")
            .and_then(Json::as_arr)
            .ok_or_else(|| body("a \"families\" array"))?
            .iter()
            .map(certificate_from)
            .collect::<Result<Vec<_>, CfmapError>>()?;
        Ok(Snapshot { cache, families })
    }
}

/// Write `content` to `path` atomically: temp file in the destination
/// directory, flushed, then renamed over the target.
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(".{}.tmp-{}", file_name.to_string_lossy(), std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---- JSON codecs for the stored types --------------------------------

fn problem_json(p: &CanonicalProblem) -> Json {
    Json::Obj(vec![
        ("mu".into(), Json::ints(&p.mu)),
        ("deps".into(), Json::int_rows(&p.deps)),
        ("space".into(), Json::int_rows(&p.space)),
    ])
}

fn problem_from(v: &Json) -> Result<CanonicalProblem, CfmapError> {
    Ok(CanonicalProblem {
        mu: int_vec(v.get("mu"))?,
        deps: int_matrix(v.get("deps"))?,
        space: int_matrix(v.get("space"))?,
    })
}

fn cache_key_json(k: &CacheKey) -> Json {
    let mut fields = vec![("problem".into(), problem_json(&k.problem))];
    if let Some(cap) = k.cap {
        fields.push(("cap".into(), Json::Int(cap)));
    }
    if let Some(n) = k.max_candidates {
        fields.push(("max_candidates".into(), Json::Int(i64::try_from(n).unwrap_or(i64::MAX))));
    }
    Json::Obj(fields)
}

fn cache_key_from(v: &Json) -> Result<CacheKey, CfmapError> {
    Ok(CacheKey {
        problem: problem_from(
            v.get("problem").ok_or_else(|| mismatch("body", "key with \"problem\"", "other"))?,
        )?,
        cap: v.get("cap").and_then(Json::as_i64),
        max_candidates: v
            .get("max_candidates")
            .and_then(Json::as_i64)
            .map(|n| u64::try_from(n).unwrap_or(0)),
    })
}

fn outcome_json(o: &CachedOutcome) -> Json {
    match o {
        CachedOutcome::Infeasible { candidates_examined } => Json::Obj(vec![
            ("status".into(), Json::Str("infeasible".into())),
            (
                "candidates_examined".into(),
                Json::Int(i64::try_from(*candidates_examined).unwrap_or(i64::MAX)),
            ),
        ]),
        CachedOutcome::Design {
            schedule,
            objective,
            total_time,
            certification,
            candidates_examined,
            processors,
            array_dims,
        } => Json::Obj(vec![
            ("status".into(), Json::Str("design".into())),
            ("schedule".into(), Json::ints(schedule)),
            ("objective".into(), Json::Int(*objective)),
            ("total_time".into(), Json::Int(*total_time)),
            ("certification".into(), certification_to_json(certification)),
            (
                "candidates_examined".into(),
                Json::Int(i64::try_from(*candidates_examined).unwrap_or(i64::MAX)),
            ),
            ("processors".into(), Json::Int(i64::try_from(*processors).unwrap_or(i64::MAX))),
            ("array_dims".into(), Json::Int(i64::try_from(*array_dims).unwrap_or(i64::MAX))),
        ]),
    }
}

fn outcome_from(v: &Json) -> Result<CachedOutcome, CfmapError> {
    let status = v
        .get("status")
        .and_then(Json::as_str)
        .ok_or_else(|| mismatch("body", "outcome with \"status\"", "other"))?;
    let u64_of = |key: &str| -> Result<u64, CfmapError> {
        v.get(key)
            .and_then(Json::as_i64)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| mismatch("body", format!("outcome field {key:?}"), "other"))
    };
    let i64_of = |key: &str| -> Result<i64, CfmapError> {
        v.get(key)
            .and_then(Json::as_i64)
            .ok_or_else(|| mismatch("body", format!("outcome field {key:?}"), "other"))
    };
    match status {
        "infeasible" => {
            Ok(CachedOutcome::Infeasible { candidates_examined: u64_of("candidates_examined")? })
        }
        "design" => Ok(CachedOutcome::Design {
            schedule: int_vec(v.get("schedule"))?,
            objective: i64_of("objective")?,
            total_time: i64_of("total_time")?,
            certification: certification_from_json(
                v.get("certification")
                    .ok_or_else(|| mismatch("body", "outcome certification", "other"))?,
            )
            .map_err(|e| mismatch("body", "a valid certification", e.msg))?,
            candidates_examined: u64_of("candidates_examined")?,
            processors: u64_of("processors")?,
            array_dims: u64_of("array_dims")?,
        }),
        other => Err(mismatch("body", "outcome status design|infeasible", other)),
    }
}

fn family_key_json(k: &FamilyKey) -> Json {
    Json::Obj(vec![
        ("deps".into(), Json::int_rows(&k.deps)),
        ("space".into(), Json::int_rows(&k.space)),
        (
            "shape".into(),
            Json::Arr(
                k.shape
                    .iter()
                    .map(|s| match s {
                        Some(c) => Json::Int(*c),
                        None => Json::Null,
                    })
                    .collect(),
            ),
        ),
    ])
}

fn family_key_from(v: &Json) -> Result<FamilyKey, CfmapError> {
    let shape = v
        .get("shape")
        .and_then(Json::as_arr)
        .ok_or_else(|| mismatch("body", "family key \"shape\"", "other"))?
        .iter()
        .map(|s| match s {
            Json::Null => Ok(None),
            Json::Int(c) => Ok(Some(*c)),
            _ => Err(mismatch("body", "shape of ints and nulls", "other")),
        })
        .collect::<Result<Vec<_>, CfmapError>>()?;
    Ok(FamilyKey { deps: int_matrix(v.get("deps"))?, space: int_matrix(v.get("space"))?, shape })
}

/// `None` when a template coefficient exceeds `i64` — such certificates
/// (never produced by real fits, whose inputs are `i64` schedules) are
/// simply not persisted rather than corrupted.
pub(crate) fn certificate_json(c: &FamilyCertificate) -> Option<Json> {
    let schedule: Option<Vec<Json>> = c
        .template
        .schedule
        .iter()
        .map(|f| Some(Json::ints(&[f.slope.to_i64()?, f.offset.to_i64()?])))
        .collect();
    let obligations = Json::Arr(
        c.obligations
            .iter()
            .map(|o| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(o.name.into())),
                    (
                        "discharge".into(),
                        Json::Str(
                            match o.discharge {
                                Discharge::Symbolic => "symbolic",
                                Discharge::Probed => "probed",
                            }
                            .into(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Some(Json::Obj(vec![
        ("key".into(), family_key_json(&c.template.key)),
        ("schedule".into(), Json::Arr(schedule?)),
        ("objective".into(), Json::ints(&c.template.objective)),
        ("mu0".into(), Json::Int(c.template.mu0)),
        ("fitted".into(), Json::ints(&c.fitted)),
        ("probes".into(), Json::ints(&c.probes)),
        ("obligations".into(), obligations),
    ]))
}

fn certificate_from(v: &Json) -> Result<FamilyCertificate, CfmapError> {
    let key = family_key_from(
        v.get("key").ok_or_else(|| mismatch("body", "certificate \"key\"", "other"))?,
    )?;
    let schedule = v
        .get("schedule")
        .and_then(Json::as_arr)
        .ok_or_else(|| mismatch("body", "certificate \"schedule\"", "other"))?
        .iter()
        .map(|f| {
            let pair = int_vec(Some(f))?;
            match pair[..] {
                [slope, offset] => Ok(AffineInt::from_i64(slope, offset)),
                _ => Err(mismatch("body", "[slope, offset] pairs", "other")),
            }
        })
        .collect::<Result<Vec<_>, CfmapError>>()?;
    let objective_vec = int_vec(v.get("objective"))?;
    let objective: [i64; 3] = objective_vec
        .try_into()
        .map_err(|_| mismatch("body", "a 3-coefficient objective", "other"))?;
    let mu0 = v
        .get("mu0")
        .and_then(Json::as_i64)
        .ok_or_else(|| mismatch("body", "certificate \"mu0\"", "other"))?;
    let obligations = v
        .get("obligations")
        .and_then(Json::as_arr)
        .ok_or_else(|| mismatch("body", "certificate \"obligations\"", "other"))?
        .iter()
        .map(|o| {
            // Obligation names are a closed set (they are `&'static str`
            // in core); an unknown name means the snapshot came from a
            // different build generation.
            let name = match o.get("name").and_then(Json::as_str) {
                Some("validity") => "validity",
                Some("rank") => "rank",
                Some("conflict-freedom") => "conflict-freedom",
                Some("objective-form") => "objective-form",
                other => {
                    return Err(mismatch(
                        "body",
                        "a known obligation name",
                        other.unwrap_or("<missing>"),
                    ))
                }
            };
            let discharge = match o.get("discharge").and_then(Json::as_str) {
                Some("symbolic") => Discharge::Symbolic,
                Some("probed") => Discharge::Probed,
                other => {
                    return Err(mismatch(
                        "body",
                        "discharge symbolic|probed",
                        other.unwrap_or("<missing>"),
                    ))
                }
            };
            Ok(ProofObligation { name, discharge })
        })
        .collect::<Result<Vec<_>, CfmapError>>()?;
    Ok(FamilyCertificate {
        template: FamilyTemplate { key, schedule, objective, mu0 },
        fitted: int_vec(v.get("fitted"))?,
        probes: int_vec(v.get("probes"))?,
        obligations,
    })
}

fn int_vec(v: Option<&Json>) -> Result<Vec<i64>, CfmapError> {
    v.and_then(Json::as_arr)
        .ok_or_else(|| mismatch("body", "an integer array", "other"))?
        .iter()
        .map(|item| item.as_i64().ok_or_else(|| mismatch("body", "integer entries", "other")))
        .collect()
}

fn int_matrix(v: Option<&Json>) -> Result<Vec<Vec<i64>>, CfmapError> {
    v.and_then(Json::as_arr)
        .ok_or_else(|| mismatch("body", "an array of integer arrays", "other"))?
        .iter()
        .map(|row| int_vec(Some(row)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_core::family::{certify, cold_solve, FamilyInstance};
    use cfmap_core::Certification;

    fn matmul_certificate() -> FamilyCertificate {
        let problem = CanonicalProblem {
            mu: vec![4, 4, 4],
            deps: vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]],
            space: vec![vec![1, -1, -1]],
        };
        let (key, _) = FamilyKey::of(&problem);
        let instances: Vec<FamilyInstance> =
            [2i64, 3, 4].iter().map(|&p| cold_solve(&key, p).unwrap().unwrap()).collect();
        certify(&key, &instances).unwrap()
    }

    fn sample() -> Snapshot {
        let problem = CanonicalProblem {
            mu: vec![4, 4, 4],
            deps: vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]],
            space: vec![vec![1, -1, -1]],
        };
        Snapshot {
            cache: vec![
                (
                    CacheKey { problem: problem.clone(), cap: None, max_candidates: None },
                    CachedOutcome::Design {
                        schedule: vec![3, 2, 1],
                        objective: 24,
                        total_time: 25,
                        certification: Certification::Optimal,
                        candidates_examined: 90,
                        processors: 13,
                        array_dims: 1,
                    },
                ),
                (
                    CacheKey { problem, cap: Some(5), max_candidates: Some(10) },
                    CachedOutcome::Infeasible { candidates_examined: 10 },
                ),
            ],
            families: vec![matmul_certificate()],
        }
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let snap = sample();
        let text = snap.encode();
        let back = Snapshot::decode(&text).unwrap();
        assert_eq!(back.cache.len(), 2);
        for ((k1, _), (k2, _)) in snap.cache.iter().zip(&back.cache) {
            assert_eq!(k1, k2);
        }
        assert_eq!(back.families, snap.families);
        // Outcomes compare field-by-field (CachedOutcome lacks PartialEq).
        assert_eq!(text, Snapshot { cache: back.cache, families: back.families }.encode());
    }

    #[test]
    fn tampered_body_is_refused_with_checksum_mismatch() {
        let text = sample().encode();
        // Flip one digit inside the body, keeping the length identical.
        let tampered = text.replacen("\"objective\":24", "\"objective\":42", 1);
        assert_ne!(tampered, text);
        let err = Snapshot::decode(&tampered).unwrap_err();
        let CfmapError::SnapshotMismatch { field, .. } = &err else {
            panic!("expected mismatch, got {err:?}");
        };
        assert_eq!(field, "checksum");
    }

    #[test]
    fn wrong_version_and_digest_are_precise() {
        let text = sample().encode();
        let old = text.replacen("cfmapsnap v1 ", "cfmapsnap v0 ", 1);
        let err = Snapshot::decode(&old).unwrap_err();
        assert!(
            matches!(&err, CfmapError::SnapshotMismatch { field, actual, .. }
                if field == "version" && actual == "v0"),
            "{err:?}"
        );
        // A digest from a foreign build generation.
        let foreign = {
            let pos = text.find("digest=").unwrap() + "digest=".len();
            let mut t = text.clone();
            t.replace_range(pos..pos + 16, "00000000deadbeef");
            t
        };
        let err = Snapshot::decode(&foreign).unwrap_err();
        assert!(
            matches!(&err, CfmapError::SnapshotMismatch { field, actual, .. }
                if field == "digest" && actual == "00000000deadbeef"),
            "{err:?}"
        );
        assert!(err.to_string().contains("snapshot mismatch"), "{err}");
    }

    #[test]
    fn truncation_is_refused() {
        let text = sample().encode();
        let truncated = &text[..text.len() - 10];
        let err = Snapshot::decode(truncated).unwrap_err();
        assert!(
            matches!(&err, CfmapError::SnapshotMismatch { field, .. } if field == "bytes"),
            "{err:?}"
        );
        assert!(Snapshot::decode("garbage").is_err());
        assert!(Snapshot::decode("").is_err());
    }

    #[test]
    fn atomic_write_lands_or_leaves_nothing() {
        let dir = std::env::temp_dir().join(format!("cfmapsnap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.snap");
        let text = sample().encode();
        write_atomic(&path, &text).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        // No temp droppings.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
