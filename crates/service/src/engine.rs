//! The mapping engine: turns a [`MapRequest`] into a [`MapResponse`],
//! consulting the canonicalizing design cache.
//!
//! The cache key is the [`CanonicalProblem`] of `(J, D, S)` plus the
//! deterministic solver knobs (`cap`, `max_candidates`). Two rules keep
//! the cache honest:
//!
//! * **wall-clock budgets bypass the cache** — `timeout_ms` makes the
//!   outcome machine- and load-dependent, so such requests are always
//!   solved fresh and never stored;
//! * **candidate budgets join the key** — `max_candidates` is
//!   deterministic (the search visits candidates in a fixed order), so a
//!   best-effort answer is reusable, but only by requests with the same
//!   budget.
//!
//! Batch resolution ([`Engine::resolve_batch`]) groups requests by cache
//! key and solves each distinct problem once, fanning the answer out
//! through each member's own axis permutation — eight permuted copies of
//! matmul in one batch cost one search.

use crate::cache::{CacheStats, ShardedLruCache};
use crate::family_store::{FamilyStats, FamilyStore};
use crate::snapshot::Snapshot;
use crate::wire::{
    MapOutcome, MapRequest, MapResponse, ParetoOutcome, ParetoPointWire, ParetoRequest,
    ParetoResponse,
};
use cfmap_core::metrics::{
    Counter, Histogram, Registry, CONFLICT_MEMO_HITS, CONFLICT_MEMO_MISSES,
    DEFAULT_LATENCY_BUCKETS_US, EXACT_CONFLICT_TESTS, HNF_COMPUTATIONS, HYBRID_ESCALATIONS,
    ORBITS_PRUNED, PARETO_DOMINATED_PRUNED,
};
use cfmap_core::budget::clock;
use cfmap_core::{
    canonicalize, BudgetLimit, CancelToken, CanonicalProblem, Canonicalization, Certification,
    CfmapError, Deadline, HybridPolicy, MappingMatrix, ParetoSearch, Procedure51, ResourceModel,
    SearchBudget, SearchTelemetry, SolveRoute, SpaceMap, SymmetryMode, TieBreak,
};
use cfmap_model::{algorithms, DependenceMatrix, IndexSet, LinearSchedule, Uda};
use cfmap_systolic::{peak_link_load, Simulator, SystolicArray};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Design-cache key: the canonical problem plus deterministic knobs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical `(μ, D, S)`.
    pub problem: CanonicalProblem,
    /// Objective cap, if the caller overrode the heuristic.
    pub cap: Option<i64>,
    /// Candidate budget, if any.
    pub max_candidates: Option<u64>,
}

/// What the cache stores per key: the search's answer in *canonical*
/// coordinates (each request de-canonicalizes with its own permutation).
#[derive(Clone, Debug)]
pub enum CachedOutcome {
    /// A mapping was found.
    Design {
        /// `Π°` in canonical coordinates.
        schedule: Vec<i64>,
        /// Objective `f`.
        objective: i64,
        /// Total time `t = f + 1`.
        total_time: i64,
        /// Optimal or best-effort.
        certification: Certification,
        /// Search effort behind this answer.
        candidates_examined: u64,
        /// Processor count of the synthesized array (permutation-invariant).
        processors: u64,
        /// Array dimensionality `k − 1`.
        array_dims: u64,
    },
    /// The search proved the candidate space empty.
    Infeasible {
        /// Search effort behind the proof.
        candidates_examined: u64,
    },
}

/// The deterministic knob set of a Pareto request — part of every
/// frontier-cache key, since each combination defines a different
/// frontier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParetoKnobs {
    /// Objective cap override.
    pub cap: Option<i64>,
    /// Space-row entry bound override.
    pub entry_bound: Option<i64>,
    /// Whether bandwidth is a fourth objective axis.
    pub include_bandwidth: bool,
    /// Processor budget.
    pub max_processors: Option<u64>,
    /// Wire budget.
    pub max_wires: Option<i64>,
    /// Bandwidth budget.
    pub max_bandwidth: Option<u64>,
}

/// Frontier-cache key. Fixed-space requests key on the canonical
/// problem so permuted-but-equivalent requests share one frontier,
/// exactly like the design cache; fixed-schedule and joint scopes have
/// no pinned space map to canonicalize around, so they key on the
/// normalized problem verbatim.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ParetoCacheKey {
    /// Fixed-space scope: canonical `(μ, D, S)` identity.
    Canonical {
        /// Canonical problem.
        problem: CanonicalProblem,
        /// Deterministic knobs.
        knobs: ParetoKnobs,
    },
    /// Fixed-schedule or joint scope: the problem verbatim.
    Exact {
        /// Index-set bounds.
        mu: Vec<i64>,
        /// Dependence columns.
        deps: Vec<Vec<i64>>,
        /// Pinned schedule, if the scope is fixed-schedule.
        schedule: Option<Vec<i64>>,
        /// Deterministic knobs.
        knobs: ParetoKnobs,
    },
}

/// What the frontier cache stores. Under a `Canonical` key the point
/// schedules (and space rows) are in canonical coordinates; each
/// requester de-canonicalizes with its own permutation on the way out.
#[derive(Clone, Debug)]
struct CachedFrontier {
    points: Vec<ParetoPointWire>,
    dominated_pruned: u64,
    candidates_examined: u64,
}

/// Aggregate search-effort counters across every solve the engine has
/// run, for `/stats` (the `/metrics` endpoint exposes the same numbers
/// with finer label breakdowns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Searches actually run (cache hits excluded).
    pub solves: u64,
    /// Schedule candidates generated across all solves.
    pub candidates_enumerated: u64,
    /// Candidates accepted (every acceptance at the winning objective
    /// level — under [`TieBreak::LexMax`] a level can accept several).
    pub candidates_accepted: u64,
    /// Hermite normal forms computed.
    pub hnf_computations: u64,
    /// Mixed-radix fallback variants screened during budget degradation.
    pub fallback_screened: u64,
}

/// How the engine's searches exploit structure: whether to quotient the
/// candidate space by the problem's symmetry stabilizer, and whether an
/// exploding enumeration may escalate to the ILP decomposition
/// mid-search. Both default on — quotienting is bit-identical under the
/// engine's `TieBreak::LexMax` pin, and hybrid answers are tagged with
/// [`SolveRoute::HybridIlp`] so they never feed the family fitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverPolicy {
    /// Enumerate one representative per stabilizer orbit.
    pub quotient: bool,
    /// Escalate to the ILP route when level growth projects past the
    /// policy's candidate horizon (`None` disables escalation).
    pub hybrid: Option<HybridPolicy>,
    /// Answer exact conflict verdicts from the process-wide
    /// kernel-lattice memo (distinct candidates whose saturated kernel
    /// lattices coincide over the same index box share one verdict).
    /// Bit-identical either way; off is chiefly for baselines.
    pub memo: bool,
}

impl Default for SolverPolicy {
    fn default() -> SolverPolicy {
        SolverPolicy { quotient: true, hybrid: Some(HybridPolicy::default()), memo: true }
    }
}

/// The shared solver state behind every worker thread.
pub struct Engine {
    cache: Arc<ShardedLruCache<CacheKey, CachedOutcome>>,
    /// Frontier cache: one entry per (problem identity, knob set).
    pareto_cache: Arc<ShardedLruCache<ParetoCacheKey, CachedFrontier>>,
    /// Per-point simulator re-verification time on fresh frontiers.
    pareto_verify: Arc<Histogram>,
    /// Fresh frontier searches run (cache hits excluded).
    pareto_solves: Arc<Counter>,
    /// Size of the most recently solved frontier (the
    /// `cfmap_pareto_frontier_size` gauge reads this).
    pareto_frontier_size: Arc<std::sync::atomic::AtomicI64>,
    /// Schedule-family catalogue: certificates answer whole μ-families
    /// with zero search (see [`crate::family_store`]).
    family: Arc<FamilyStore>,
    metrics: Arc<Registry>,
    solve_latency: Arc<Histogram>,
    solves: Arc<Counter>,
    enumerated: Arc<Counter>,
    accepted: Arc<Counter>,
    hnf: Arc<Counter>,
    fallback: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    /// Engine-wide cooperative cancellation: every search polls this
    /// token, so tripping it (e.g. when the daemon's drain deadline
    /// passes) winds all in-flight solves down within one candidate's
    /// latency.
    cancel: CancelToken,
    /// Structural search knobs (symmetry quotient, hybrid ILP escape).
    policy: SolverPolicy,
}

impl Engine {
    /// An engine whose cache holds `cache_capacity` designs across
    /// `shards` shards.
    pub fn new(cache_capacity: usize, shards: usize) -> Engine {
        let cache = Arc::new(ShardedLruCache::new(cache_capacity, shards));
        let family = Arc::new(FamilyStore::new());
        let metrics = Arc::new(Registry::new());
        // Family-catalogue traffic and occupancy, read live at scrape time.
        for (name, help, read) in [
            (
                "cfmapd_family_hits_total",
                "Requests answered from a schedule-family certificate",
                0usize,
            ),
            ("cfmapd_family_certificates", "Schedule-family certificates held", 1),
            ("cfmapd_family_observing", "Families accumulating observations", 2),
            ("cfmapd_family_rejected", "Families the fitter permanently rejected", 3),
        ] {
            let f = Arc::clone(&family);
            metrics.gauge_fn(name, help, &[], move || {
                let s = f.stats();
                let v = match read {
                    0 => s.hits,
                    1 => s.certificates,
                    2 => s.observing,
                    _ => s.rejected,
                };
                i64::try_from(v).unwrap_or(i64::MAX)
            });
        }
        // Cache occupancy and traffic, read live at scrape time.
        for (name, help, read) in [
            ("cfmap_cache_entries", "Designs resident in the cache", 0usize),
            ("cfmap_cache_hits_total", "Design-cache hits", 1),
            ("cfmap_cache_misses_total", "Design-cache misses", 2),
            ("cfmap_cache_evictions_total", "Design-cache evictions", 3),
        ] {
            let c = Arc::clone(&cache);
            metrics.gauge_fn(name, help, &[], move || {
                let s = c.stats();
                let v = match read {
                    0 => s.entries,
                    1 => s.hits,
                    2 => s.misses,
                    _ => s.evictions,
                };
                i64::try_from(v).unwrap_or(i64::MAX)
            });
        }
        // Process-wide core counters (they count work done by *every*
        // search in the process, not just this engine's).
        metrics.gauge_fn(
            "cfmap_core_hnf_computations_total",
            "Hermite normal forms computed process-wide",
            &[],
            || i64::try_from(HNF_COMPUTATIONS.get()).unwrap_or(i64::MAX),
        );
        metrics.gauge_fn(
            "cfmap_core_exact_conflict_tests_total",
            "Exact conflict-vector searches run process-wide",
            &[],
            || i64::try_from(EXACT_CONFLICT_TESTS.get()).unwrap_or(i64::MAX),
        );
        // Symmetry-quotient and hybrid-route health: orbits_pruned > 0
        // proves the quotient is engaged; escalations count ILP attempts
        // (not adoptions — a non-optimal ILP answer is discarded).
        metrics.gauge_fn(
            "cfmap_orbits_pruned_total",
            "Candidates skipped as non-representatives of a stabilizer orbit",
            &[],
            || i64::try_from(ORBITS_PRUNED.get()).unwrap_or(i64::MAX),
        );
        metrics.gauge_fn(
            "cfmap_hybrid_escalations_total",
            "Mid-search escalations from enumeration to the ILP route",
            &[],
            || i64::try_from(HYBRID_ESCALATIONS.get()).unwrap_or(i64::MAX),
        );
        // Kernel-lattice conflict memo health: hits > 0 proves candidates
        // are sharing exact verdicts across coinciding kernel lattices.
        metrics.gauge_fn(
            "cfmap_conflict_memo_hits_total",
            "Exact conflict verdicts answered from the kernel-lattice memo",
            &[],
            || i64::try_from(CONFLICT_MEMO_HITS.get()).unwrap_or(i64::MAX),
        );
        metrics.gauge_fn(
            "cfmap_conflict_memo_misses_total",
            "Exact conflict verdicts computed and recorded in the memo",
            &[],
            || i64::try_from(CONFLICT_MEMO_MISSES.get()).unwrap_or(i64::MAX),
        );
        // Exact-arithmetic fast-path health: spills should stay at zero
        // for paper-sized problems, and the i64 HNF kernel should carry
        // nearly all decompositions.
        metrics.gauge_fn(
            "cfmap_intlin_bigint_spills_total",
            "Int values promoted from the inline i64 fast path to heap limbs",
            &[],
            || i64::try_from(cfmap_intlin::bigint_spills_total()).unwrap_or(i64::MAX),
        );
        metrics.gauge_fn(
            "cfmap_intlin_hnf_i64_fast_total",
            "Hermite normal forms computed entirely on the i64 kernel",
            &[],
            || i64::try_from(cfmap_intlin::hnf_i64_fast_total()).unwrap_or(i64::MAX),
        );
        metrics.gauge_fn(
            "cfmap_intlin_hnf_i64_fallback_total",
            "Hermite normal forms that overflowed i64 and fell back to bignum",
            &[],
            || i64::try_from(cfmap_intlin::hnf_i64_fallback_total()).unwrap_or(i64::MAX),
        );
        metrics.histogram_static(
            "cfmap_candidate_screen_duration_seconds",
            "Per-candidate screening time in Procedure 5.1",
            &[],
            &cfmap_core::metrics::CANDIDATE_SCREEN_TIME,
        );
        let solve_latency = metrics.histogram(
            "cfmap_solve_duration_seconds",
            "Wall-clock time of each fresh search (cache hits excluded)",
            &[],
            DEFAULT_LATENCY_BUCKETS_US,
        );
        let solves =
            metrics.counter("cfmap_solves_total", "Fresh searches run (cache hits excluded)", &[]);
        let enumerated = metrics.counter(
            "cfmap_search_candidates_total",
            "Schedule candidates generated by Procedure 5.1",
            &[],
        );
        let accepted = metrics.counter(
            "cfmap_search_screened_total",
            "Candidates by screening outcome",
            &[("result", "accepted")],
        );
        let hnf = metrics.counter(
            "cfmap_search_hnf_total",
            "Hermite normal forms computed by engine searches",
            &[],
        );
        let fallback = metrics.counter(
            "cfmap_search_fallback_screened_total",
            "Mixed-radix fallback variants screened during budget degradation",
            &[],
        );
        let deadline_expired = metrics.counter(
            "cfmap_deadline_expired_total",
            "Searches that degraded because their request deadline passed",
            &[],
        );
        // Pareto-frontier observability: dominated-pruned is process-wide
        // (the core search counts it), frontier size tracks the latest
        // fresh solve, and the verify histogram times the per-point
        // simulator re-check that gates caching.
        let pareto_cache = Arc::new(ShardedLruCache::new(cache_capacity, shards));
        metrics.gauge_fn(
            "cfmap_pareto_dominated_pruned_total",
            "Accepted designs discarded as Pareto-dominated or duplicate",
            &[],
            || i64::try_from(PARETO_DOMINATED_PRUNED.get()).unwrap_or(i64::MAX),
        );
        let pareto_frontier_size = Arc::new(std::sync::atomic::AtomicI64::new(0));
        {
            let size = Arc::clone(&pareto_frontier_size);
            metrics.gauge_fn(
                "cfmap_pareto_frontier_size",
                "Points on the most recently solved Pareto frontier",
                &[],
                move || size.load(std::sync::atomic::Ordering::Relaxed),
            );
        }
        let pareto_verify = metrics.histogram(
            "cfmap_pareto_verify_duration_seconds",
            "Per-point simulator re-verification time on fresh frontiers",
            &[],
            DEFAULT_LATENCY_BUCKETS_US,
        );
        let pareto_solves = metrics.counter(
            "cfmap_pareto_solves_total",
            "Fresh Pareto-frontier searches run (cache hits excluded)",
            &[],
        );
        Engine {
            cache,
            pareto_cache,
            pareto_verify,
            pareto_solves,
            pareto_frontier_size,
            family,
            metrics,
            solve_latency,
            solves,
            enumerated,
            accepted,
            hnf,
            fallback,
            deadline_expired,
            cancel: CancelToken::new(),
            policy: SolverPolicy::default(),
        }
    }

    /// Override the structural search knobs (defaults: quotient on,
    /// hybrid escalation on). Chiefly for tests and experiments that
    /// need the un-quotiented or enumeration-only behaviour.
    pub fn with_solver_policy(mut self, policy: SolverPolicy) -> Engine {
        self.policy = policy;
        self
    }

    /// The engine-wide cancellation token (cloning shares the flag).
    /// Tripping it makes every current and future search on this engine
    /// degrade promptly with [`BudgetLimit::Cancelled`] — the server's
    /// drain watchdog uses it to bound shutdown.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The engine's metrics registry (the daemon's `/metrics` endpoint
    /// renders it; route-level metrics register into it too).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Cache counters, for `/stats`.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Aggregate search-effort counters, for `/stats`.
    pub fn search_stats(&self) -> SearchStats {
        SearchStats {
            solves: self.solves.get(),
            candidates_enumerated: self.enumerated.get(),
            candidates_accepted: self.accepted.get(),
            hnf_computations: self.hnf.get(),
            fallback_screened: self.fallback.get(),
        }
    }

    /// Drop all cached designs; returns how many were resident.
    pub fn clear_cache(&self) -> u64 {
        self.cache.clear()
    }

    /// Family-catalogue counters, for `/family` and `/stats`.
    pub fn family_stats(&self) -> FamilyStats {
        self.family.stats()
    }

    /// Every certificate the catalogue holds, for `/family`.
    pub fn family_certificates(&self) -> Vec<cfmap_core::FamilyCertificate> {
        self.family.certificates()
    }

    /// Run one background fitting step: pick a family with enough
    /// observed sizes, try to promote it to a certificate, and count the
    /// outcome under `cfmapd_family_fit_total{outcome}`. Returns whether
    /// a fit was attempted (`false` = nothing ready; the caller sleeps).
    pub fn family_fit_step(&self) -> bool {
        match self.family.fit_step() {
            None => false,
            Some(result) => {
                let outcome = match &result {
                    Ok(_) => "certified",
                    Err(e) => e.outcome_label(),
                };
                self.metrics
                    .counter(
                        "cfmapd_family_fit_total",
                        "Family fit attempts by outcome",
                        &[("outcome", outcome)],
                    )
                    .inc();
                true
            }
        }
    }

    /// The engine's warm-start state — every cached design (oldest
    /// first) plus every family certificate — ready for
    /// [`Snapshot::encode`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { cache: self.cache.export(), families: self.family.certificates() }
    }

    /// Restore a snapshot produced by [`Engine::snapshot`] on a
    /// compatible build (the decoder refuses version / digest / checksum
    /// mismatches with a precise [`CfmapError::SnapshotMismatch`]).
    /// Returns `(cache entries, family certificates)` restored.
    pub fn load_snapshot(&self, text: &str) -> Result<(usize, usize), CfmapError> {
        let snap = Snapshot::decode(text)?;
        let counts = (snap.cache.len(), snap.families.len());
        for (key, outcome) in snap.cache {
            self.cache.insert(key, outcome);
        }
        for cert in snap.families {
            self.family.install(cert);
        }
        Ok(counts)
    }

    /// Fold one search's telemetry into the registry.
    fn record_search(&self, tel: &SearchTelemetry, elapsed: Duration) {
        self.solves.inc();
        self.solve_latency.observe(elapsed);
        self.enumerated.add(tel.enumerated);
        self.accepted.add(tel.accepted);
        self.hnf.add(tel.hnf_computations);
        self.fallback.add(tel.fallback_screened);
        for (label, n) in [
            ("rejected_schedule", tel.rejected_schedule),
            ("rejected_prefilter", tel.rejected_prefilter),
            ("rejected_rank", tel.rejected_rank),
            ("rejected_conflict", tel.rejected_conflict),
            ("rejected_unroutable", tel.rejected_unroutable),
        ] {
            if n > 0 {
                self.metrics
                    .counter(
                        "cfmap_search_screened_total",
                        "Candidates by screening outcome",
                        &[("result", label)],
                    )
                    .add(n);
            }
        }
        for (rule, n) in tel.condition_hits.entries() {
            if n > 0 {
                self.metrics
                    .counter(
                        "cfmap_search_condition_hits_total",
                        "Conflict-freedom dispatches by rule",
                        &[("rule", rule)],
                    )
                    .add(n);
            }
        }
        if let Some(limit) = tel.budget_limit {
            if limit == BudgetLimit::Deadline {
                self.deadline_expired.inc();
            }
            let label = match limit {
                BudgetLimit::Candidates => "candidates",
                BudgetLimit::Nodes => "nodes",
                BudgetLimit::WallClock => "wall_clock",
                BudgetLimit::Deadline => "deadline",
                BudgetLimit::Cancelled => "cancelled",
            };
            self.metrics
                .counter(
                    "cfmap_search_budget_tripped_total",
                    "Searches ended early by a budget limit",
                    &[("limit", label)],
                )
                .inc();
        }
    }

    /// Resolve one request, anchoring any `deadline_ms` at the call.
    pub fn resolve(&self, req: &MapRequest) -> MapResponse {
        self.resolve_anchored(req, clock::now_micros())
    }

    /// The canonical form of a request's problem — the identity the
    /// design cache keys on. Exposed (as a free function below) so a
    /// routing tier can place equivalent problems on the same backend
    /// without running the search; permuted-but-equivalent requests
    /// canonicalize identically, so they route identically too.
    pub fn canonical_problem(req: &MapRequest) -> Result<CanonicalProblem, String> {
        canonical_problem(req)
    }

    /// Resolve one request with its `deadline_ms` anchored at
    /// `anchor_us` on the budget clock — the server passes the
    /// connection-accept time, so queueing delay counts against the
    /// deadline.
    pub fn resolve_anchored(&self, req: &MapRequest, anchor_us: u64) -> MapResponse {
        let (alg, space) = match build_problem(req) {
            Ok(p) => p,
            Err(msg) => return MapResponse::BadRequest { msg },
        };
        let canon = canonicalize(&alg, &space);
        match self.lookup_or_solve(&canon, req, request_deadline(req, anchor_us)) {
            Ok((outcome, cached)) => respond(&outcome, &canon, cached),
            Err(e) => MapResponse::Error(e),
        }
    }

    /// Resolve a batch, solving each distinct canonical problem once.
    /// Returns the per-request responses (in request order) and the
    /// number of searches actually run.
    pub fn resolve_batch(&self, reqs: &[MapRequest]) -> (Vec<MapResponse>, u64) {
        self.resolve_batch_anchored(reqs, clock::now_micros())
    }

    /// [`Engine::resolve_batch`] with every member's `deadline_ms`
    /// anchored at `anchor_us` (the batch's accept time).
    pub fn resolve_batch_anchored(
        &self,
        reqs: &[MapRequest],
        anchor_us: u64,
    ) -> (Vec<MapResponse>, u64) {
        let mut responses: Vec<Option<MapResponse>> = vec![None; reqs.len()];
        // Group cacheable, well-formed requests by cache key.
        let mut groups: HashMap<CacheKey, Vec<(usize, Canonicalization)>> = HashMap::new();
        for (i, req) in reqs.iter().enumerate() {
            match build_problem(req) {
                Err(msg) => responses[i] = Some(MapResponse::BadRequest { msg }),
                Ok((alg, space)) => {
                    let canon = canonicalize(&alg, &space);
                    if req.timeout_ms.is_some() || req.deadline_ms.is_some() {
                        // Time budget: solve fresh, never share.
                        let d = request_deadline(req, anchor_us);
                        responses[i] = Some(match self.lookup_or_solve(&canon, req, d) {
                            Ok((outcome, cached)) => respond(&outcome, &canon, cached),
                            Err(e) => MapResponse::Error(e),
                        });
                    } else {
                        let key = CacheKey {
                            problem: canon.problem.clone(),
                            cap: req.cap,
                            max_candidates: req.max_candidates,
                        };
                        groups.entry(key).or_default().push((i, canon));
                    }
                }
            }
        }
        let mut solves = 0u64;
        for (_, members) in groups {
            let (first_idx, _) = members[0];
            let canon0 = &members[0].1;
            let solved = self.lookup_or_solve(canon0, &reqs[first_idx], None);
            match solved {
                Ok((outcome, cached)) => {
                    if !cached {
                        solves += 1;
                    }
                    for (slot, (i, canon)) in members.iter().enumerate() {
                        // Members past the first share the group's answer.
                        let shared = cached || slot > 0;
                        responses[*i] = Some(respond(&outcome, canon, shared));
                    }
                }
                Err(e) => {
                    solves += 1;
                    for (i, _) in &members {
                        responses[*i] = Some(MapResponse::Error(e.clone()));
                    }
                }
            }
        }
        let out: Vec<MapResponse> = responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect();
        (out, solves)
    }

    /// Resolve a Pareto-frontier request: the exact non-dominated set
    /// over time × processors × wires (× peak bandwidth when tracked).
    ///
    /// Fixed-space requests are solved in canonical coordinates so the
    /// cached frontier serves every axis-permuted equivalent, mirroring
    /// the design cache. Fresh frontiers are re-verified point by point
    /// on the cycle-level simulator (conflict-free, within the
    /// bandwidth budget) before they are cached or served; a point that
    /// fails is an engine bug surfaced as [`CfmapError::Internal`], not
    /// a silently wrong answer.
    pub fn pareto(&self, req: &ParetoRequest) -> ParetoResponse {
        let (alg, space, schedule) = match build_pareto_problem(req) {
            Ok(p) => p,
            Err(msg) => return ParetoResponse::BadRequest { msg },
        };
        let knobs = ParetoKnobs {
            cap: req.cap,
            entry_bound: req.entry_bound,
            include_bandwidth: req.include_bandwidth,
            max_processors: req.max_processors,
            max_wires: req.max_wires,
            max_bandwidth: req.max_bandwidth,
        };
        let canon = space.as_ref().map(|s| canonicalize(&alg, s));
        let key = match &canon {
            Some(c) => ParetoCacheKey::Canonical { problem: c.problem.clone(), knobs },
            None => ParetoCacheKey::Exact {
                mu: alg.index_set.mu().to_vec(),
                deps: alg.deps.columns_i64(),
                schedule: schedule.as_ref().map(|pi| pi.as_slice().to_vec()),
                knobs,
            },
        };
        if let Some(hit) = self.pareto_cache.get(&key) {
            return respond_pareto(&hit, canon.as_ref(), req.space.as_deref(), true);
        }
        // Fixed-space scope solves the canonical problem; the other
        // scopes solve the request verbatim.
        let (solve_alg, solve_space) = match &canon {
            Some(c) => (c.problem.uda("canonical"), Some(c.problem.space_map())),
            None => (alg, None),
        };
        let model = ResourceModel {
            max_processors: req
                .max_processors
                .map(|p| usize::try_from(p).unwrap_or(usize::MAX)),
            max_wires: req.max_wires,
            max_bandwidth: req.max_bandwidth,
            include_bandwidth: req.include_bandwidth,
        };
        let tracks_bandwidth = model.tracks_bandwidth();
        let probe = |m: &MappingMatrix| peak_link_load(&solve_alg, m);
        let mut search = ParetoSearch::new(&solve_alg).resources(model).memo(self.policy.memo);
        if let Some(s) = &solve_space {
            search = search.fixed_space(s);
        }
        if let Some(pi) = &schedule {
            search = search.fixed_schedule(pi);
        }
        if let Some(cap) = req.cap {
            search = search.max_objective(cap);
        }
        if let Some(b) = req.entry_bound {
            search = search.entry_bound(b);
        }
        if self.policy.quotient {
            search = search.symmetry(SymmetryMode::Quotient);
        }
        if tracks_bandwidth {
            search = search.bandwidth_probe(&probe);
        }
        let frontier = match search.solve() {
            Ok(f) => f,
            Err(e) => return ParetoResponse::Error(e),
        };
        self.pareto_solves.inc();
        // Independent re-verification: every point must place its
        // computations conflict-free on the simulated array, and its
        // probed bandwidth must reproduce and respect the budget.
        for p in &frontier.points {
            let started = Instant::now();
            let verdict = Simulator::new(&solve_alg, &p.mapping).run();
            self.pareto_verify.observe(started.elapsed());
            let clean = match verdict {
                Ok(report) => report.conflicts.is_empty(),
                Err(e) => return ParetoResponse::Error(e),
            };
            let bandwidth_ok = !tracks_bandwidth
                || (peak_link_load(&solve_alg, &p.mapping) == p.bandwidth
                    && req.max_bandwidth.is_none_or(|b| p.bandwidth.is_some_and(|x| x <= b)));
            if !clean || !bandwidth_ok {
                return ParetoResponse::Error(CfmapError::Internal {
                    context: "pareto frontier verification".into(),
                });
            }
        }
        let points: Vec<ParetoPointWire> = frontier
            .points
            .iter()
            .map(|p| ParetoPointWire {
                space: p.space_rows(),
                schedule: p.schedule.as_slice().to_vec(),
                total_time: p.total_time,
                processors: p.processors as u64,
                wires: p.wires,
                bandwidth: p.bandwidth,
            })
            .collect();
        let cached = CachedFrontier {
            points,
            dominated_pruned: frontier.dominated_pruned,
            candidates_examined: frontier.candidates_examined,
        };
        self.pareto_frontier_size.store(
            i64::try_from(cached.points.len()).unwrap_or(i64::MAX),
            std::sync::atomic::Ordering::Relaxed,
        );
        self.pareto_cache.insert(key, cached.clone());
        respond_pareto(&cached, canon.as_ref(), req.space.as_deref(), false)
    }

    /// Cache lookup falling back to a fresh search. Returns the outcome
    /// and whether it came from the cache.
    fn lookup_or_solve(
        &self,
        canon: &Canonicalization,
        req: &MapRequest,
        deadline: Option<Deadline>,
    ) -> Result<(CachedOutcome, bool), CfmapError> {
        // Both time budgets are machine/load-dependent: never read from
        // or write into the cache under one.
        let cacheable = req.timeout_ms.is_none() && deadline.is_none();
        // Only knob-free requests ask for *the* optimum of the canonical
        // problem — the thing a family certificate certifies — so only
        // they may read from or feed the family catalogue.
        let plain = cacheable && req.cap.is_none() && req.max_candidates.is_none();
        let key = CacheKey {
            problem: canon.problem.clone(),
            cap: req.cap,
            max_candidates: req.max_candidates,
        };
        if cacheable {
            if let Some(hit) = self.cache.get(&key) {
                return Ok((hit, true));
            }
            if plain {
                if let Some(outcome) = self.family_hit(&canon.problem) {
                    self.cache.insert(key, outcome.clone());
                    return Ok((outcome, true));
                }
            }
        }
        let started = Instant::now();
        let (outcome, telemetry, route) =
            solve_canonical(&canon.problem, req, deadline, &self.cancel, &self.policy)?;
        self.record_search(&telemetry, started.elapsed());
        // A search wound down by engine-wide cancellation (drain) is not
        // the request's true answer — never cache it.
        if cacheable && telemetry.budget_limit != Some(BudgetLimit::Cancelled) {
            self.cache.insert(key, outcome.clone());
            // Only solver-proven optima of knob-free requests may become
            // family observations: a best-effort or infeasible outcome
            // (or anything solved under a budget) can never help mint a
            // certificate. ILP-escalated optima are likewise excluded:
            // the ILP route proves the objective but makes no LexMax
            // tie-break promise, and family templates must lie on the
            // enumerator's canonical representatives.
            if plain && route == SolveRoute::Enumeration {
                if let CachedOutcome::Design {
                    schedule,
                    objective,
                    certification: Certification::Optimal,
                    ..
                } = &outcome
                {
                    self.family.observe(&canon.problem, schedule.clone(), *objective);
                }
            }
        }
        Ok((outcome, false))
    }

    /// Answer a canonical problem from a family certificate: fill μ into
    /// the affine template, re-check validity / rank / conflict-freedom
    /// exactly for this size (done inside [`FamilyStore::lookup`]), and
    /// synthesize the array. Zero candidates are enumerated; the answer
    /// is certified [`Certification::Optimal`] because the certificate
    /// proves the template optimal for every size it covers.
    fn family_hit(&self, problem: &CanonicalProblem) -> Option<CachedOutcome> {
        let design = self.family.lookup(problem)?;
        let alg = problem.uda("canonical");
        let space = problem.space_map();
        let schedule = LinearSchedule::new(&design.schedule);
        let mapping = MappingMatrix::new(space, schedule);
        let array = SystolicArray::synthesize(&alg, &mapping);
        Some(CachedOutcome::Design {
            schedule: design.schedule,
            objective: design.objective,
            total_time: design.total_time,
            certification: Certification::Optimal,
            candidates_examined: 0,
            processors: array.num_processors() as u64,
            array_dims: array.dims() as u64,
        })
    }
}

/// The absolute deadline of a request, anchored at `anchor_us`.
fn request_deadline(req: &MapRequest, anchor_us: u64) -> Option<Deadline> {
    req.deadline_ms
        .map(|ms| Deadline::at_micros(anchor_us.saturating_add(ms.saturating_mul(1_000))))
}

/// Run Procedure 5.1 on the canonical problem.
fn solve_canonical(
    problem: &CanonicalProblem,
    req: &MapRequest,
    deadline: Option<Deadline>,
    cancel: &CancelToken,
    policy: &SolverPolicy,
) -> Result<(CachedOutcome, SearchTelemetry, SolveRoute), CfmapError> {
    let alg = problem.uda("canonical");
    let space = problem.space_map();
    let mut budget = SearchBudget::unlimited();
    if let Some(n) = req.max_candidates {
        budget = budget.with_candidates(n);
    }
    if let Some(ms) = req.timeout_ms {
        budget = budget.with_wall_clock(Duration::from_millis(ms));
    }
    if let Some(d) = deadline {
        budget = budget.with_deadline(d);
    }
    // LexMax picks the lex-greatest accepted schedule of the winning
    // objective level — a μ-stable canonical representative, so the sizes
    // a family accumulates lie on one affine-in-μ template (FirstFound's
    // winner can flip between enumeration-order neighbours as μ grows).
    let mut proc = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .budget(budget)
        .memo(policy.memo)
        .cancel_token(cancel);
    if policy.quotient {
        proc = proc.symmetry(SymmetryMode::Quotient);
    }
    if let Some(hybrid) = policy.hybrid {
        proc = proc.hybrid(hybrid);
    }
    if let Some(cap) = req.cap {
        proc = proc.max_objective(cap);
    }
    let outcome = proc.solve()?;
    let certification = outcome.certification;
    let candidates_examined = outcome.candidates_examined;
    let telemetry = outcome.telemetry.clone();
    let route = outcome.route;
    match outcome.into_mapping() {
        None => Ok((CachedOutcome::Infeasible { candidates_examined }, telemetry, route)),
        Some(opt) => {
            let array = SystolicArray::synthesize(&alg, &opt.mapping);
            let design = CachedOutcome::Design {
                schedule: opt.schedule.as_slice().to_vec(),
                objective: opt.objective,
                total_time: opt.total_time,
                certification,
                candidates_examined,
                processors: array.num_processors() as u64,
                array_dims: array.dims() as u64,
            };
            Ok((design, telemetry, route))
        }
    }
}

/// Build the wire response, translating the canonical-coordinates
/// schedule back into the caller's axis order.
fn respond(outcome: &CachedOutcome, canon: &Canonicalization, cached: bool) -> MapResponse {
    match outcome {
        CachedOutcome::Infeasible { candidates_examined } => {
            MapResponse::Infeasible { candidates_examined: *candidates_examined }
        }
        CachedOutcome::Design {
            schedule,
            objective,
            total_time,
            certification,
            candidates_examined,
            processors,
            array_dims,
        } => MapResponse::Ok(MapOutcome {
            schedule: canon.schedule_to_original(schedule),
            objective: *objective,
            total_time: *total_time,
            certification: *certification,
            candidates_examined: *candidates_examined,
            cached,
            processors: *processors,
            array_dims: *array_dims,
        }),
    }
}

/// The affinity identity of a Pareto request, for the routing tier.
/// Fixed-space requests canonicalize exactly the way the engine's
/// frontier cache keys them, so permuted-but-equivalent requests land
/// on the same backend; the other scopes return `Ok(None)` and the
/// router falls back to hashing the raw body (identical requests still
/// co-locate). Malformed requests are rejected with the message a
/// backend would produce.
pub fn pareto_affinity_problem(
    req: &ParetoRequest,
) -> Result<Option<CanonicalProblem>, String> {
    let (alg, space, _schedule) = build_pareto_problem(req)?;
    Ok(space.as_ref().map(|s| canonicalize(&alg, s).problem))
}

/// Build the wire response for a frontier, translating each point back
/// into the caller's axis order when the cache entry is canonical (the
/// point order is preserved: every objective axis is invariant under
/// the canonicalizing permutation, so ascending-vector order is too).
fn respond_pareto(
    cached: &CachedFrontier,
    canon: Option<&Canonicalization>,
    original_space: Option<&[Vec<i64>]>,
    from_cache: bool,
) -> ParetoResponse {
    let points: Vec<ParetoPointWire> = cached
        .points
        .iter()
        .map(|p| {
            let mut q = p.clone();
            if let Some(c) = canon {
                q.schedule = c.schedule_to_original(&p.schedule);
                if let Some(rows) = original_space {
                    q.space = rows.to_vec();
                }
            }
            q
        })
        .collect();
    ParetoResponse::Ok(ParetoOutcome {
        frontier_size: points.len() as u64,
        points,
        dominated_pruned: cached.dominated_pruned,
        candidates_examined: cached.candidates_examined,
        cached: from_cache,
        verified: true,
    })
}

/// Largest magnitude accepted for any `mu`/`deps`/`space` entry. Real
/// mapping problems use entries a few orders of magnitude above 1; the
/// bound keeps extreme wire values (up to `i64::MIN`, which cannot even
/// be negated) out of the canonicalizer and solver arithmetic.
const MAX_ABS_ENTRY: i64 = 1 << 40;

/// Largest problem dimensionality accepted over the wire. Every stage
/// downstream — tie-group canonicalization, the schedule search, the
/// budget-degrade fallback, exact conflict screening — is exponential in
/// `n`, so unbounded wire-supplied dimensions are a denial-of-service
/// lever, not a capability. The paper's workloads top out at `n = 5`.
const MAX_DIMS: usize = 8;

fn check_magnitude(entries: &[i64], what: &str) -> Result<(), String> {
    match entries.iter().find(|v| v.unsigned_abs() > MAX_ABS_ENTRY as u64) {
        Some(v) => Err(format!("{what} entry {v} exceeds the magnitude bound 2^40")),
        None => Ok(()),
    }
}

/// Validate a request and reduce it to its [`CanonicalProblem`] without
/// solving anything. This is the routing-tier entry point: the router
/// canonicalizes exactly the way the engine's cache does, so the
/// consistent-hash key it computes agrees with every backend's cache
/// key, and malformed requests are rejected with the same message a
/// backend would produce (no backend round-trip needed).
pub fn canonical_problem(req: &MapRequest) -> Result<CanonicalProblem, String> {
    build_problem(req).map(|(alg, space)| canonicalize(&alg, &space).problem)
}

/// Materialize `(J, D, S)` from a request, or explain why it is
/// malformed (wire analogue of the CLI's usage errors).
fn build_problem(req: &MapRequest) -> Result<(Uda, SpaceMap), String> {
    let alg = build_algorithm(req.algorithm.as_deref(), &req.mu, req.deps.as_deref())?;
    let space = build_space(&alg, &req.space)?;
    Ok((alg, space))
}

/// Materialize the algorithm half of a request — named workload or
/// structural `(μ, D)` — with the wire-level magnitude and dimension
/// guards. Shared by the `/map` and `/pareto` builders.
fn build_algorithm(
    algorithm: Option<&str>,
    mu: &[i64],
    deps: Option<&[Vec<i64>]>,
) -> Result<Uda, String> {
    check_magnitude(mu, "\"mu\"")?;
    for col in deps.iter().copied().flatten() {
        check_magnitude(col, "\"deps\"")?;
    }
    match algorithm {
        Some(name) => {
            if deps.is_some() {
                return Err("give either \"algorithm\" or \"deps\", not both".into());
            }
            if mu.len() != 1 {
                return Err("named workloads take a single size: \"mu\": [n]".into());
            }
            let mu = mu[0];
            if mu < 1 {
                return Err("\"mu\" must be ≥ 1".into());
            }
            named_algorithm(name, mu)
        }
        None => {
            let n = mu.len();
            if n == 0 {
                return Err("\"mu\" must not be empty".into());
            }
            if n > MAX_DIMS {
                return Err(format!("problems beyond n = {MAX_DIMS} axes are not served (got {n})"));
            }
            if mu.iter().any(|&m| m < 1) {
                return Err("every \"mu\" entry must be ≥ 1".into());
            }
            let deps =
                deps.ok_or("structural requests need \"deps\" (or name an \"algorithm\")")?;
            if deps.is_empty() {
                return Err("\"deps\" must contain at least one column".into());
            }
            for (i, col) in deps.iter().enumerate() {
                if col.len() != n {
                    return Err(format!(
                        "deps column {i} has {} entries, \"mu\" has n = {n}",
                        col.len()
                    ));
                }
            }
            let refs: Vec<&[i64]> = deps.iter().map(Vec::as_slice).collect();
            Ok(Uda::new("request", IndexSet::new(mu), DependenceMatrix::from_columns(&refs)))
        }
    }
}

/// Validate wire-supplied space rows against `alg` and build the map.
fn build_space(alg: &Uda, rows: &[Vec<i64>]) -> Result<SpaceMap, String> {
    for row in rows {
        check_magnitude(row, "\"space\"")?;
    }
    let n = alg.dim();
    if rows.is_empty() {
        return Err("\"space\" must contain at least one row".into());
    }
    if rows.len() >= n {
        return Err(format!(
            "\"space\" has {} rows; a (k−1)-dimensional array needs fewer than n = {n}",
            rows.len()
        ));
    }
    for (i, row) in rows.iter().enumerate() {
        if row.len() != n {
            return Err(format!(
                "space row {i} has {} entries, the algorithm has n = {n}",
                row.len()
            ));
        }
        if row.iter().all(|&v| v == 0) {
            return Err(format!("space row {i} is all zeros"));
        }
    }
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    Ok(SpaceMap::from_rows(&refs))
}

/// Materialize a Pareto request's problem: the algorithm plus at most
/// one pinned side. Scope falls out of what is pinned — `space` →
/// frontier over schedules, `schedule` → frontier over 1-row space
/// maps, neither → joint.
fn build_pareto_problem(
    req: &ParetoRequest,
) -> Result<(Uda, Option<SpaceMap>, Option<LinearSchedule>), String> {
    if req.space.is_some() && req.schedule.is_some() {
        return Err("pin at most one of \"space\" and \"schedule\"".into());
    }
    if req.entry_bound.is_some_and(|b| b < 1) {
        return Err("\"entry_bound\" must be ≥ 1".into());
    }
    if req.cap.is_some_and(|c| c < 1) {
        return Err("\"cap\" must be ≥ 1".into());
    }
    let alg = build_algorithm(req.algorithm.as_deref(), &req.mu, req.deps.as_deref())?;
    let space = req.space.as_ref().map(|rows| build_space(&alg, rows)).transpose()?;
    let schedule = match &req.schedule {
        None => None,
        Some(pi) => {
            check_magnitude(pi, "\"schedule\"")?;
            if pi.len() != alg.dim() {
                return Err(format!(
                    "\"schedule\" has {} entries, the algorithm has n = {}",
                    pi.len(),
                    alg.dim()
                ));
            }
            Some(LinearSchedule::new(pi))
        }
    };
    Ok((alg, space, schedule))
}

/// The named-workload table (kept in lockstep with the `cfmap` CLI).
fn named_algorithm(name: &str, mu: i64) -> Result<Uda, String> {
    Ok(match name {
        "matmul" => algorithms::matmul(mu),
        "transitive-closure" | "tc" => algorithms::transitive_closure(mu),
        "convolution" | "conv" => algorithms::convolution(mu, (mu / 2).max(1)),
        "lu" => algorithms::lu_decomposition(mu),
        "sor" => algorithms::sor(mu, mu),
        "matvec" => algorithms::matvec(mu, mu),
        "identity4" => algorithms::identity_cube(4, mu),
        "bitlevel-matmul" => algorithms::bitlevel_matmul(mu, mu + 1),
        "bitlevel-convolution" => algorithms::bitlevel_convolution(mu, mu + 1),
        "bitlevel-lu" => algorithms::bitlevel_lu(mu, mu + 1),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_request() -> MapRequest {
        MapRequest::named("matmul", 4, vec![vec![1, 1, -1]])
    }

    #[test]
    fn solves_matmul_and_caches_it() {
        let engine = Engine::new(64, 4);
        let first = engine.resolve(&matmul_request());
        let MapResponse::Ok(a) = &first else { panic!("expected ok, got {first:?}") };
        assert_eq!(a.total_time, 25);
        assert_eq!(a.objective, 24);
        assert!(!a.cached);
        assert_eq!(a.certification, Certification::Optimal);
        let second = engine.resolve(&matmul_request());
        let MapResponse::Ok(b) = &second else { panic!("expected ok") };
        assert!(b.cached);
        assert_eq!(a.schedule, b.schedule);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn permuted_request_hits_the_same_entry() {
        let engine = Engine::new(64, 4);
        let base = engine.resolve(&matmul_request());
        let MapResponse::Ok(a) = &base else { panic!("expected ok") };
        // matmul with axes relabeled by σ = [2, 0, 1], stated structurally.
        let alg = algorithms::matmul(4).permuted_axes(&[2, 0, 1]);
        let permuted = MapRequest {
            algorithm: None,
            mu: alg.index_set.mu().to_vec(),
            deps: Some(alg.deps.columns_i64()),
            space: vec![vec![-1, 1, 1]],
            cap: None,
            max_candidates: None,
            timeout_ms: None,
            deadline_ms: None,
        };
        let resp = engine.resolve(&permuted);
        let MapResponse::Ok(b) = &resp else { panic!("expected ok, got {resp:?}") };
        assert!(b.cached, "permuted variant should hit the canonical entry");
        assert_eq!(b.total_time, a.total_time);
        assert_eq!(b.processors, a.processors);
        // Same Π modulo the permutation: entry c of the permuted answer
        // is entry σ(c) of the base answer.
        let expected: Vec<i64> = [2usize, 0, 1].iter().map(|&p| a.schedule[p]).collect();
        assert_eq!(b.schedule, expected);
    }

    #[test]
    fn timeout_requests_bypass_the_cache() {
        let engine = Engine::new(64, 4);
        let mut req = matmul_request();
        req.timeout_ms = Some(10_000);
        let first = engine.resolve(&req);
        assert!(matches!(first, MapResponse::Ok(_)));
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 0, "wall-clock budgets must not be cached");
        let second = engine.resolve(&req);
        let MapResponse::Ok(o) = second else { panic!("expected ok") };
        assert!(!o.cached);
    }

    #[test]
    fn budgeted_request_is_best_effort_and_keyed_separately() {
        let engine = Engine::new(64, 4);
        let mut budgeted = matmul_request();
        budgeted.max_candidates = Some(2);
        let resp = engine.resolve(&budgeted);
        let MapResponse::Ok(o) = &resp else { panic!("expected best-effort ok, got {resp:?}") };
        assert!(matches!(o.certification, Certification::BestEffort { .. }));
        // The unlimited request must not reuse the truncated answer.
        let full = engine.resolve(&matmul_request());
        let MapResponse::Ok(f) = &full else { panic!("expected ok") };
        assert!(!f.cached);
        assert_eq!(f.certification, Certification::Optimal);
    }

    #[test]
    fn malformed_requests_are_bad_requests() {
        let engine = Engine::new(8, 1);
        let cases = vec![
            MapRequest { mu: vec![], ..matmul_request() },
            MapRequest { algorithm: Some("nope".into()), ..matmul_request() },
            MapRequest { space: vec![], ..matmul_request() },
            MapRequest { space: vec![vec![1, 1]], ..matmul_request() },
            MapRequest { space: vec![vec![0, 0, 0]], ..matmul_request() },
            // Magnitude bound: i64::MIN in a space row once reached the
            // canonicalizer, whose sign-normalization cannot negate it.
            MapRequest { space: vec![vec![1, 1, i64::MIN]], ..matmul_request() },
            MapRequest { mu: vec![i64::MAX], ..matmul_request() },
            MapRequest {
                algorithm: None,
                mu: vec![4, 4, 4],
                deps: Some(vec![vec![1, 0, (1 << 40) + 1]]),
                space: vec![vec![1, 1, -1]],
                cap: None,
                max_candidates: None,
                timeout_ms: None,
                deadline_ms: None,
            },
            // Dimension bound: every solver stage is exponential in n.
            MapRequest {
                algorithm: None,
                mu: vec![2; 25],
                deps: Some(vec![std::iter::once(1)
                    .chain(std::iter::repeat(0))
                    .take(25)
                    .collect()]),
                space: vec![std::iter::repeat_n(0, 24)
                    .chain(std::iter::once(1))
                    .collect()],
                cap: None,
                max_candidates: None,
                timeout_ms: None,
                deadline_ms: None,
            },
            MapRequest {
                algorithm: None,
                mu: vec![4, 4, 4],
                deps: None,
                space: vec![vec![1, 1, -1]],
                cap: None,
                max_candidates: None,
                timeout_ms: None,
                deadline_ms: None,
            },
        ];
        for req in cases {
            let resp = engine.resolve(&req);
            assert!(
                matches!(resp, MapResponse::BadRequest { .. }),
                "expected bad_request for {req:?}, got {resp:?}"
            );
        }
    }

    #[test]
    fn expired_deadline_degrades_and_bypasses_the_cache() {
        let engine = Engine::new(64, 4);
        let mut req = matmul_request();
        req.deadline_ms = Some(0); // expired the moment it is anchored
        let resp = engine.resolve(&req);
        let MapResponse::Ok(o) = &resp else { panic!("expected best-effort ok, got {resp:?}") };
        assert!(matches!(o.certification, Certification::BestEffort { .. }));
        assert!(!o.cached);
        assert_eq!(engine.cache_stats().entries, 0, "deadline answers must not be cached");
        let text = engine.metrics().render_prometheus();
        assert!(text.contains("cfmap_deadline_expired_total 1"), "{text}");
        assert!(
            text.contains("cfmap_search_budget_tripped_total{limit=\"deadline\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn cancelled_engine_degrades_and_does_not_cache() {
        let engine = Engine::new(64, 4);
        engine.cancel_token().cancel();
        let resp = engine.resolve(&matmul_request());
        let MapResponse::Ok(o) = &resp else { panic!("expected best-effort ok, got {resp:?}") };
        assert!(matches!(o.certification, Certification::BestEffort { .. }));
        assert_eq!(
            engine.cache_stats().entries,
            0,
            "cancellation-degraded answers must not poison the cache"
        );
    }

    #[test]
    fn search_stats_and_metrics_grow_with_solves() {
        let engine = Engine::new(64, 4);
        assert_eq!(engine.search_stats(), SearchStats::default());
        let first = engine.resolve(&matmul_request());
        assert!(matches!(first, MapResponse::Ok(_)));
        let stats = engine.search_stats();
        assert_eq!(stats.solves, 1);
        assert!(stats.candidates_enumerated > 0);
        // LexMax scans the whole winning objective level, so one solve
        // can accept several tie-broken candidates.
        assert!(stats.candidates_accepted >= 1);
        assert!(stats.hnf_computations >= 1);
        // A cache hit is not a solve: no counter may move.
        let _ = engine.resolve(&matmul_request());
        assert_eq!(engine.search_stats(), stats);
        let text = engine.metrics().render_prometheus();
        assert!(text.contains("cfmap_solves_total 1"), "{text}");
        assert!(text.contains("cfmap_search_screened_total{result=\"accepted\"}"), "{text}");
        assert!(text.contains("cfmap_solve_duration_seconds_count 1"), "{text}");
        assert!(text.contains("cfmap_cache_entries 1"), "{text}");
        assert!(text.contains("cfmap_core_hnf_computations_total"), "{text}");
        // Exact-arithmetic fast-path telemetry: the spill gauge is
        // present, and a matmul-sized solve observes screen times.
        assert!(text.contains("cfmap_intlin_bigint_spills_total"), "{text}");
        assert!(text.contains("cfmap_intlin_hnf_i64_fast_total"), "{text}");
        assert!(text.contains("cfmap_intlin_hnf_i64_fallback_total"), "{text}");
        assert!(text.contains("# TYPE cfmap_candidate_screen_duration_seconds histogram"), "{text}");
        assert!(!text.contains("cfmap_candidate_screen_duration_seconds_count 0"), "{text}");
        // Symmetry-quotient / hybrid-route gauges are exported.
        assert!(text.contains("cfmap_orbits_pruned_total"), "{text}");
        assert!(text.contains("cfmap_hybrid_escalations_total"), "{text}");
        // Kernel-lattice conflict memo gauges are exported, and a default
        // policy solve routes exact verdicts through the memo.
        assert!(text.contains("cfmap_conflict_memo_hits_total"), "{text}");
        assert!(text.contains("cfmap_conflict_memo_misses_total"), "{text}");
    }

    #[test]
    fn hybrid_optimal_never_feeds_the_family_catalogue() {
        // An absurd candidate horizon makes every matmul solve escalate
        // to the ILP route; the answer is still Optimal (the ILP proves
        // the same objective) but must not become a family observation —
        // the ILP makes no LexMax tie-break promise, and family
        // templates must lie on enumeration representatives.
        let engine = Engine::new(64, 4).with_solver_policy(SolverPolicy {
            hybrid: Some(HybridPolicy { candidate_horizon: 1, min_levels: 1 }),
            ..SolverPolicy::default()
        });
        let resp = engine.resolve(&matmul_request());
        let MapResponse::Ok(a) = &resp else { panic!("expected ok, got {resp:?}") };
        assert_eq!(a.certification, Certification::Optimal);
        assert_eq!(a.total_time, 25, "ILP proves the enumerative optimum");
        assert_eq!(
            engine.family_stats().observing,
            0,
            "an ILP-escalated optimum must never be observed by the family fitter"
        );
        // The identical request through a default (enumeration-route)
        // engine does feed the catalogue — the gate is the route, not
        // the problem.
        let plain = Engine::new(64, 4);
        assert!(matches!(plain.resolve(&matmul_request()), MapResponse::Ok(_)));
        assert_eq!(plain.family_stats().observing, 1);
    }

    #[test]
    fn quotient_policy_prunes_identity_and_matches_full_search() {
        // identity n=4 has a nontrivial stabilizer (S_3 on the unpinned
        // axes); the default engine policy quotients it, and the answer
        // must match the unquotiented engine's bit for bit.
        let req = MapRequest::named("identity4", 2, vec![vec![1, 0, 0, 0]]);
        let quotiented = Engine::new(64, 4);
        let full = Engine::new(64, 4)
            .with_solver_policy(SolverPolicy { quotient: false, hybrid: None, memo: true });
        let before = ORBITS_PRUNED.get();
        let q = quotiented.resolve(&req);
        let MapResponse::Ok(q) = &q else { panic!("expected ok, got {q:?}") };
        let f = full.resolve(&req);
        let MapResponse::Ok(f) = &f else { panic!("expected ok, got {f:?}") };
        assert_eq!(q.schedule, f.schedule, "quotient must be bit-identical");
        assert_eq!(q.objective, f.objective);
        assert_eq!(q.certification, Certification::Optimal);
        assert!(
            ORBITS_PRUNED.get() > before,
            "the quotiented engine must skip non-representatives"
        );
        assert!(
            q.candidates_examined < f.candidates_examined,
            "quotient must shrink the examined count: {} vs {}",
            q.candidates_examined,
            f.candidates_examined
        );
    }

    #[test]
    fn batch_solves_each_distinct_problem_once() {
        let engine = Engine::new(64, 4);
        // Three axis-permuted copies of the same matmul problem plus one
        // genuinely different size.
        let alg = algorithms::matmul(4);
        let mut reqs = Vec::new();
        for perm in [[0usize, 1, 2], [1, 2, 0], [2, 0, 1]] {
            let p = alg.permuted_axes(&perm);
            let s: Vec<i64> = perm.iter().map(|&c| [1i64, 1, -1][c]).collect();
            reqs.push(MapRequest {
                algorithm: None,
                mu: p.index_set.mu().to_vec(),
                deps: Some(p.deps.columns_i64()),
                space: vec![s],
                cap: None,
                max_candidates: None,
                timeout_ms: None,
                deadline_ms: None,
            });
        }
        reqs.push(MapRequest::named("matmul", 5, vec![vec![1, 1, -1]]));
        reqs.push(MapRequest { mu: vec![], ..MapRequest::named("matmul", 4, vec![]) });
        let (responses, solves) = engine.resolve_batch(&reqs);
        assert_eq!(responses.len(), 5);
        assert_eq!(solves, 2, "three permuted copies must share one search");
        let times: Vec<i64> = responses[..3]
            .iter()
            .map(|r| match r {
                MapResponse::Ok(o) => o.total_time,
                other => panic!("expected ok, got {other:?}"),
            })
            .collect();
        assert_eq!(times, vec![25, 25, 25]);
        assert!(matches!(responses[4], MapResponse::BadRequest { .. }));
    }

    fn mm(mu: i64) -> MapRequest {
        MapRequest::named("matmul", mu, vec![vec![1, 1, -1]])
    }

    /// Warm the engine on μ ∈ {2, 3, 4} and promote the observations to
    /// a certificate via the fitter entry point the server's background
    /// thread uses.
    fn warm_and_fit(engine: &Engine) {
        for mu in [2, 3, 4] {
            let resp = engine.resolve(&mm(mu));
            assert!(matches!(resp, MapResponse::Ok(_)), "{resp:?}");
        }
        assert_eq!(engine.family_stats().observing, 1);
        assert!(engine.family_fit_step(), "matmul family must be ready to fit");
        assert_eq!(engine.family_stats().certificates, 1);
    }

    #[test]
    fn family_certificate_answers_unseen_sizes_with_zero_search() {
        let engine = Engine::new(64, 4);
        warm_and_fit(&engine);
        assert!(!engine.family_fit_step(), "nothing further to fit");
        // μ = 9 was never solved here: the answer must come from the
        // certificate — zero candidates examined — yet be bit-identical
        // to what a cold engine's full search finds.
        let solves_before = engine.search_stats().solves;
        let resp = engine.resolve(&mm(9));
        let MapResponse::Ok(warm) = &resp else { panic!("expected ok, got {resp:?}") };
        assert!(warm.cached);
        assert_eq!(warm.candidates_examined, 0);
        assert_eq!(warm.certification, Certification::Optimal);
        assert_eq!(engine.search_stats().solves, solves_before, "no search may run");
        assert!(engine.family_stats().hits >= 1);
        let cold_engine = Engine::new(64, 4);
        let MapResponse::Ok(cold) = cold_engine.resolve(&mm(9)) else { panic!("cold solve") };
        assert_eq!(warm.schedule, cold.schedule);
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.total_time, cold.total_time);
        assert_eq!(warm.processors, cold.processors);
        assert_eq!(warm.array_dims, cold.array_dims);
        // The instantiated answer is now an ordinary LRU entry too.
        let MapResponse::Ok(again) = engine.resolve(&mm(9)) else { panic!("expected ok") };
        assert!(again.cached);
        let text = engine.metrics().render_prometheus();
        assert!(text.contains("cfmapd_family_hits_total 1"), "{text}");
        assert!(text.contains("cfmapd_family_fit_total{outcome=\"certified\"} 1"), "{text}");
    }

    #[test]
    fn degraded_runs_never_mint_certificates() {
        let engine = Engine::new(64, 4);
        // Candidate-budgeted (best-effort), wall-clock-budgeted, and
        // deadline-expired runs across three sizes each: none may feed
        // the family catalogue, whatever their certification.
        for mu in [2, 3, 4] {
            let mut budgeted = mm(mu);
            budgeted.max_candidates = Some(2);
            assert!(matches!(engine.resolve(&budgeted), MapResponse::Ok(_)));
            let mut timed = mm(mu);
            timed.timeout_ms = Some(10_000);
            assert!(matches!(engine.resolve(&timed), MapResponse::Ok(_)));
            let mut late = mm(mu);
            late.deadline_ms = Some(0);
            assert!(matches!(engine.resolve(&late), MapResponse::Ok(_)));
        }
        let stats = engine.family_stats();
        assert_eq!(stats.observing, 0, "degraded runs must leave no observations: {stats:?}");
        assert!(!engine.family_fit_step(), "nothing may be fitted from degraded runs");
        assert_eq!(engine.family_stats().certificates, 0);
        // A cancelled engine's answers are equally barred.
        let engine = Engine::new(64, 4);
        engine.cancel_token().cancel();
        for mu in [2, 3, 4] {
            assert!(matches!(engine.resolve(&mm(mu)), MapResponse::Ok(_)));
        }
        assert_eq!(engine.family_stats().observing, 0);
        assert!(!engine.family_fit_step());
    }

    fn pareto_matmul() -> ParetoRequest {
        ParetoRequest {
            space: Some(vec![vec![1, 1, -1]]),
            ..ParetoRequest::named("matmul", 4)
        }
    }

    #[test]
    fn pareto_fixed_space_corner_matches_the_map_route() {
        let engine = Engine::new(64, 4);
        let resp = engine.pareto(&pareto_matmul());
        let ParetoResponse::Ok(o) = &resp else { panic!("expected ok, got {resp:?}") };
        assert!(!o.cached);
        assert!(o.verified);
        assert_eq!(o.frontier_size as usize, o.points.len());
        assert!(!o.points.is_empty());
        // The time corner is the front point, and it is the /map answer.
        let MapResponse::Ok(m) = engine.resolve(&matmul_request()) else { panic!("map ok") };
        assert_eq!(o.points[0].total_time, m.total_time);
        assert_eq!(o.points[0].schedule, m.schedule);
        assert_eq!(o.points[0].space, vec![vec![1, 1, -1]]);
        // Second call hits the frontier cache.
        let ParetoResponse::Ok(again) = engine.pareto(&pareto_matmul()) else { panic!("ok") };
        assert!(again.cached);
        assert_eq!(again.points, o.points);
        let text = engine.metrics().render_prometheus();
        assert!(text.contains("cfmap_pareto_solves_total 1"), "{text}");
        assert!(text.contains("cfmap_pareto_frontier_size"), "{text}");
        assert!(text.contains("cfmap_pareto_dominated_pruned_total"), "{text}");
        assert!(text.contains("cfmap_pareto_verify_duration_seconds_count"), "{text}");
    }

    #[test]
    fn pareto_permuted_fixed_space_hits_the_canonical_entry() {
        let engine = Engine::new(64, 4);
        let ParetoResponse::Ok(base) = engine.pareto(&pareto_matmul()) else { panic!("ok") };
        // The same problem with axes relabeled by σ = [2, 0, 1].
        let alg = algorithms::matmul(4).permuted_axes(&[2, 0, 1]);
        let permuted = ParetoRequest {
            algorithm: None,
            mu: alg.index_set.mu().to_vec(),
            deps: Some(alg.deps.columns_i64()),
            space: Some(vec![vec![-1, 1, 1]]),
            ..ParetoRequest::named("matmul", 4)
        };
        let ParetoResponse::Ok(p) = engine.pareto(&permuted) else { panic!("ok") };
        assert!(p.cached, "permuted variant must hit the canonical frontier entry");
        assert_eq!(p.frontier_size, base.frontier_size);
        for (a, b) in base.points.iter().zip(&p.points) {
            assert_eq!(a.total_time, b.total_time);
            assert_eq!(a.processors, b.processors);
            assert_eq!(a.wires, b.wires);
            assert_eq!(b.space, vec![vec![-1, 1, 1]], "requester keeps its own rows");
            let expected: Vec<i64> = [2usize, 0, 1].iter().map(|&c| a.schedule[c]).collect();
            assert_eq!(b.schedule, expected, "Π translated through σ");
        }
    }

    #[test]
    fn pareto_bandwidth_axis_is_probed_and_budgeted() {
        let engine = Engine::new(64, 4);
        let req = ParetoRequest { include_bandwidth: true, ..pareto_matmul() };
        let ParetoResponse::Ok(o) = engine.pareto(&req) else { panic!("ok") };
        assert!(!o.points.is_empty());
        assert!(o.points.iter().all(|p| p.bandwidth.is_some()), "{:?}", o.points);
        // A zero-bandwidth budget on a moving-data design empties the frontier.
        let starved =
            ParetoRequest { max_bandwidth: Some(0), include_bandwidth: true, ..pareto_matmul() };
        let ParetoResponse::Ok(empty) = engine.pareto(&starved) else { panic!("ok") };
        assert!(empty.points.is_empty(), "ok-with-empty-frontier, not an error");
    }

    #[test]
    fn pareto_malformed_requests_are_bad_requests() {
        let engine = Engine::new(8, 1);
        let cases = vec![
            // Pinning both sides.
            ParetoRequest { schedule: Some(vec![1, 4, 1]), ..pareto_matmul() },
            ParetoRequest { entry_bound: Some(0), ..pareto_matmul() },
            ParetoRequest { cap: Some(0), ..pareto_matmul() },
            ParetoRequest { mu: vec![], ..pareto_matmul() },
            ParetoRequest { algorithm: Some("nope".into()), ..pareto_matmul() },
            ParetoRequest { space: Some(vec![vec![0, 0, 0]]), ..pareto_matmul() },
            // Schedule length must match n.
            ParetoRequest {
                space: None,
                schedule: Some(vec![1, 4]),
                ..ParetoRequest::named("matmul", 4)
            },
        ];
        for req in cases {
            let resp = engine.pareto(&req);
            assert!(
                matches!(resp, ParetoResponse::BadRequest { .. }),
                "expected bad_request for {req:?}, got {resp:?}"
            );
        }
    }

    #[test]
    fn snapshot_restores_cache_and_family_warmth() {
        let engine = Engine::new(64, 4);
        warm_and_fit(&engine);
        let text = engine.snapshot().encode();
        // A fresh engine restored from the snapshot answers a size no
        // process ever solved — from the certificate, with zero search.
        let restored = Engine::new(64, 4);
        let (entries, families) = restored.load_snapshot(&text).expect("snapshot loads");
        assert_eq!((entries, families), (3, 1));
        let MapResponse::Ok(hit) = restored.resolve(&mm(2)) else { panic!("expected ok") };
        assert!(hit.cached, "restored LRU entry must hit");
        let MapResponse::Ok(warm) = restored.resolve(&mm(9)) else { panic!("expected ok") };
        assert!(warm.cached);
        assert_eq!(warm.candidates_examined, 0);
        assert_eq!(restored.search_stats().solves, 0, "no search may run after restore");
        assert!(restored.family_stats().hits >= 1);
        // Corrupted text is refused precisely, not half-loaded.
        let tampered = text.replace("\"objective\":", "\"objectivo\":");
        let fresh = Engine::new(64, 4);
        let err = fresh.load_snapshot(&tampered).unwrap_err();
        assert!(matches!(err, CfmapError::SnapshotMismatch { .. }), "{err:?}");
    }
}
