//! Shared HTTP/1.1 primitives for the daemon, the router, and the
//! pooled client.
//!
//! One parser, one response writer, one response reader — `cfmapd`
//! (server side), `cfmapd-router` (both sides: it is a server to
//! clients and a client to backends), and [`crate::client`] all speak
//! the same byte-level subset: request line, headers, `Content-Length`
//! body. Keeping the framing in one module is what makes keep-alive
//! safe to add: every reader frames by `Content-Length`, so a reused
//! connection never swallows the next message's bytes.
//!
//! Keep-alive is strictly *opt-in*: a connection stays open only when
//! the peer explicitly sends `Connection: keep-alive`. Clients that
//! frame responses by EOF (the original `Connection: close` protocol,
//! still used by the fault-injection harness and raw-socket tests) are
//! untouched.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Request bodies above this size are refused with `413` — mapping
/// requests are a few hundred bytes; megabytes signal a confused client.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// The request line and header section together may not exceed this many
/// bytes. Without a bound, `read_line` would buffer a newline-free byte
/// stream indefinitely (`MAX_BODY_BYTES` only guards the body).
pub const MAX_HEAD_BYTES: usize = 64 << 10;

/// Why reading a request failed.
pub enum ReadError {
    /// Connection closed before a request line (shutdown poke, or a
    /// keep-alive client hanging up between requests).
    Empty,
    /// Head or body exceeded its byte budget.
    TooLarge,
    /// The bytes were not a parseable HTTP request.
    Malformed(String),
}

/// A parsed HTTP request: method, path, body, the optional
/// `X-Cfmapd-Fault` header (honored only under fault injection), and
/// whether the client asked to keep the connection open.
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Absolute path, starting with `/`.
    pub path: String,
    /// Decoded body (empty when no `Content-Length` was sent).
    pub body: String,
    /// `X-Cfmapd-Fault` header value, if present.
    pub fault: Option<String>,
    /// The client sent `Connection: keep-alive` — the server *may*
    /// serve further requests on this connection.
    pub keep_alive: bool,
}

/// `read_line`, but never buffering more than `limit` bytes: reading
/// stops at the first newline or at `limit + 1` bytes, whichever comes
/// first, so a client streaming newline-free bytes cannot grow memory.
/// Returns `Err(TooLarge)` when the line exceeds `limit`.
pub fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
) -> Result<Option<String>, ReadError> {
    let mut line = String::new();
    match reader.by_ref().take(limit as u64 + 1).read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(ReadError::Malformed(format!("read failed: {e}"))),
    }
    // `take` capped the read at limit + 1 bytes: a longer "line" means
    // no newline arrived within the budget.
    if line.len() > limit {
        return Err(ReadError::TooLarge);
    }
    Ok(Some(line))
}

/// Read one `METHOD /path HTTP/1.x` request with an optional
/// `Content-Length` body. The head (request line + headers) is bounded
/// by [`MAX_HEAD_BYTES`], the body by [`MAX_BODY_BYTES`].
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let line = match read_line_limited(reader, head_budget) {
        Ok(Some(line)) => line,
        Ok(None) | Err(ReadError::Malformed(_)) => return Err(ReadError::Empty),
        Err(e) => return Err(e),
    };
    head_budget -= line.len().min(head_budget);
    if line.trim().is_empty() {
        return Err(ReadError::Empty);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(ReadError::Malformed(format!("bad request line {:?}", line.trim())));
    }
    let mut content_length: Option<usize> = None;
    let mut fault: Option<String> = None;
    let mut keep_alive = false;
    loop {
        let header = match read_line_limited(reader, head_budget)? {
            None => break,
            Some(h) => h,
        };
        head_budget -= header.len().min(head_budget);
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad Content-Length".into()))?;
                // Duplicate Content-Length headers are a request-smuggling
                // staple: the framing depends on which copy a parser
                // honours. Conflicting copies are refused outright;
                // RFC 9110 §8.6 allows identical repeats.
                match content_length {
                    Some(prev) if prev != parsed => {
                        return Err(ReadError::Malformed(
                            "conflicting Content-Length headers".into(),
                        ));
                    }
                    _ => content_length = Some(parsed),
                }
            } else if name.eq_ignore_ascii_case("x-cfmapd-fault") {
                fault = Some(value.trim().to_string());
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ReadError::Malformed(format!("body read failed: {e}")))?;
    String::from_utf8(body)
        .map(|b| Request { method, path, body: b, fault, keep_alive })
        .map_err(|_| ReadError::Malformed("body is not UTF-8".into()))
}

/// Write a `Connection: close` HTTP/1.1 response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_extra(stream, status, content_type, body, &[], false)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on a shed `503`) and an explicit connection disposition. The
/// `Content-Length` is always exact, so a `keep_alive` response leaves
/// the stream positioned at the next message boundary.
pub fn write_response_extra(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Status",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Write one request. `keep_alive` controls the `Connection` header;
/// a `Content-Length` is always sent (zero for body-less requests) so
/// the server can frame the message either way.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    host: &str,
    body: Option<&str>,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let payload = body.unwrap_or("");
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        payload.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// A parsed HTTP response, as read by the pooled client side.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// The `Retry-After` header in seconds, if present.
    pub retry_after: Option<u64>,
    /// The `X-Cfmapd-Backend` header (which backend a router answer
    /// came from), if present.
    pub backend: Option<String>,
    /// The server committed to keeping the connection open: it sent
    /// `Connection: keep-alive` *and* a `Content-Length`, so the stream
    /// is positioned exactly at the next response boundary.
    pub keep_alive: bool,
}

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Read one HTTP/1.1 response. With a `Content-Length`, the body is
/// framed exactly (the connection stays reusable); without one, the
/// body runs to EOF (`Connection: close` framing).
pub fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<Response> {
    let mut head_budget = MAX_HEAD_BYTES;
    let status_line = match read_line_limited(reader, head_budget) {
        Ok(Some(line)) => line,
        Ok(None) => return Err(proto_err("connection closed before a status line")),
        Err(ReadError::Malformed(m)) => return Err(proto_err(m)),
        Err(_) => return Err(proto_err("status line too large")),
    };
    head_budget -= status_line.len().min(head_budget);
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| proto_err(format!("bad status line {:?}", status_line.trim())))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    let mut backend: Option<String> = None;
    let mut keep_alive = false;
    loop {
        let header = match read_line_limited(reader, head_budget) {
            Ok(Some(h)) => h,
            Ok(None) => break,
            Err(ReadError::Malformed(m)) => return Err(proto_err(m)),
            Err(_) => return Err(proto_err("response head too large")),
        };
        head_budget -= header.len().min(head_budget);
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    Some(value.parse().map_err(|_| proto_err("bad Content-Length"))?);
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.parse().ok();
            } else if name.eq_ignore_ascii_case("x-cfmapd-backend") {
                backend = Some(value.to_string());
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    let body = match content_length {
        Some(len) => {
            if len > MAX_BODY_BYTES {
                return Err(proto_err("response body too large"));
            }
            let mut raw = vec![0u8; len];
            reader.read_exact(&mut raw)?;
            String::from_utf8(raw).map_err(|_| proto_err("response body is not UTF-8"))?
        }
        None => {
            // EOF framing: the connection cannot be reused.
            keep_alive = false;
            let mut raw = Vec::new();
            reader.read_to_end(&mut raw)?;
            String::from_utf8(raw).map_err(|_| proto_err("response body is not UTF-8"))?
        }
    };
    Ok(Response { status, body, retry_after, backend, keep_alive })
}
