//! A minimal blocking HTTP client for `cfmapd`.
//!
//! Enough HTTP/1.1 to talk to the server in this crate (and to anything
//! that answers `Connection: close` responses with a `Content-Length` or
//! EOF-delimited body). Used by the `cfmap client` subcommand, the smoke
//! tests, and the throughput bench — all of which must stay hermetic.

use crate::wire::{MapRequest, MapResponse, WireError};
use std::str::FromStr;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing, or reading the socket failed.
    Io(std::io::Error),
    /// The server's bytes were not a valid HTTP response or payload.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error talking to cfmapd: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error talking to cfmapd: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Protocol(e.to_string())
    }
}

/// An HTTP status code plus response body.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// Status code (200, 400, …).
    pub status: u16,
    /// Response body (JSON for every cfmapd route).
    pub body: String,
}

/// Issue one request and read the full reply (`Connection: close`).
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpReply, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol("response has no header/body split".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    Ok(HttpReply { status, body: body.to_string() })
}

/// POST a path with a JSON body.
pub fn post(addr: &str, path: &str, body: &str) -> Result<HttpReply, ClientError> {
    http_request(addr, "POST", path, Some(body))
}

/// GET a path.
pub fn get(addr: &str, path: &str) -> Result<HttpReply, ClientError> {
    http_request(addr, "GET", path, None)
}

/// Submit one mapping request to `POST /map` and decode the answer.
pub fn map(addr: &str, request: &MapRequest) -> Result<MapResponse, ClientError> {
    let reply = post(addr, "/map", &request.to_json().serialize())?;
    Ok(MapResponse::from_str(&reply.body)?)
}
