//! A minimal blocking HTTP client for `cfmapd` (and `cfmapd-router`).
//!
//! Enough HTTP/1.1 to talk to the server in this crate (and to anything
//! that answers `Connection: close` responses with a `Content-Length` or
//! EOF-delimited body). Used by the `cfmap client` subcommand, the smoke
//! tests, and the throughput bench — all of which must stay hermetic.
//!
//! Connection reuse: a [`Client`] keeps one `Connection: keep-alive`
//! socket warm between requests (E12 measured the 5.4× http-vs-engine
//! gap as almost entirely connection setup). The server frames every
//! keep-alive response with an exact `Content-Length`, so reuse is
//! byte-safe; a stale pooled socket (the server retires connections
//! after a bounded request count and a short idle window) falls back to
//! one fresh connection without surfacing an error. The module-level
//! free functions ([`http_request`], [`map`], …) keep the original
//! one-shot `Connection: close` behavior.
//!
//! Resilience: [`ClientConfig`] carries explicit connect/read/write
//! timeouts and an optional retry policy with jittered exponential
//! backoff. Retries trigger on I/O errors and on `503` answers (the
//! server's admission-control shed — or the router's, when every
//! backend is open-circuit), and honor the `Retry-After` header as a
//! floor for the next backoff sleep, including a `Retry-After` the
//! router forwarded from a shedding backend.

use crate::http::{read_response, write_request};
use crate::wire::{MapRequest, MapResponse, WireError};
use std::str::FromStr;
use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing, or reading the socket failed.
    Io(std::io::Error),
    /// The server's bytes were not a valid HTTP response or payload.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error talking to cfmapd: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error talking to cfmapd: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Protocol(e.to_string())
    }
}

/// Socket timeouts and retry policy for one client.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (response may take a full budgeted search).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Additional attempts after the first (0 = fail fast).
    pub retries: u32,
    /// First backoff sleep; doubles per retry up to [`backoff_cap`].
    ///
    /// [`backoff_cap`]: ClientConfig::backoff_cap
    pub backoff_base: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for the backoff jitter, so tests replay deterministically.
    pub jitter_seed: u64,
    /// Requests sent on one kept-alive connection before the client
    /// retires it voluntarily (stays below the server's own bound so
    /// the server never hangs up between our write and read).
    pub max_requests_per_conn: usize,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x5eed,
            max_requests_per_conn: 90,
        }
    }
}

/// An HTTP status code plus response body.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// Status code (200, 400, …).
    pub status: u16,
    /// Response body (JSON for every cfmapd route).
    pub body: String,
    /// The `Retry-After` header in seconds, if the server sent one
    /// (cfmapd does on a shed `503`).
    pub retry_after: Option<u64>,
    /// The `X-Cfmapd-Backend` header, if present — `cfmapd-router`
    /// stamps every forwarded answer with the backend that produced it.
    pub backend: Option<String>,
}

/// One warm keep-alive connection plus how many requests it has carried.
struct KeptConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    served: usize,
}

/// A `cfmapd` client: an address plus a [`ClientConfig`], holding one
/// keep-alive connection warm between requests.
#[derive(Debug)]
pub struct Client {
    addr: String,
    config: ClientConfig,
    /// Jitter state (xorshift64*), advanced per backoff sleep.
    jitter: u64,
    /// The warm connection, if the last exchange left one reusable.
    conn: Option<KeptConn>,
}

impl std::fmt::Debug for KeptConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeptConn(served: {})", self.served)
    }
}

impl Client {
    /// A client with the given timeouts and retry policy.
    pub fn new(addr: &str, config: ClientConfig) -> Client {
        let jitter = config.jitter_seed | 1; // xorshift state must be non-zero
        Client { addr: addr.to_string(), config, jitter, conn: None }
    }

    /// A client with [`ClientConfig::default`] (no retries).
    pub fn with_defaults(addr: &str) -> Client {
        Client::new(addr, ClientConfig::default())
    }

    /// Issue one request, retrying on I/O errors and `503` per the
    /// configured policy. Honors `Retry-After` as a backoff floor.
    /// Reuses the warm keep-alive connection when one is available.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, ClientError> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.exchange(method, path, body);
            let retryable = match &outcome {
                Ok(reply) => reply.status == 503,
                Err(ClientError::Io(_)) => true,
                Err(ClientError::Protocol(_)) => false,
            };
            if !retryable || attempt >= self.config.retries {
                return outcome;
            }
            let retry_after = match &outcome {
                Ok(reply) => reply.retry_after,
                Err(_) => None,
            };
            std::thread::sleep(self.backoff(attempt, retry_after));
            attempt += 1;
        }
    }

    /// One exchange, preferring the warm connection. A failure on a
    /// *reused* socket is expected wear (the server retires connections
    /// after a request bound and a short idle window), so it falls back
    /// to one fresh connection before reporting anything; only the
    /// fresh connection's failure escapes as an error.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, ClientError> {
        if let Some(mut conn) = self.conn.take() {
            if let Ok(reply) = exchange_on(&mut conn, method, path, &self.addr, body) {
                conn.served += 1;
                if reply.0 && conn.served < self.config.max_requests_per_conn {
                    self.conn = Some(conn);
                }
                return Ok(reply.1);
            }
            // Stale: drop it and go fresh.
        }
        let stream = connect(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut conn = KeptConn { stream, reader, served: 0 };
        let (reusable, reply) = exchange_on(&mut conn, method, path, &self.addr, body)?;
        conn.served += 1;
        if reusable && conn.served < self.config.max_requests_per_conn {
            self.conn = Some(conn);
        }
        Ok(reply)
    }

    /// POST a path with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> Result<HttpReply, ClientError> {
        self.request("POST", path, Some(body))
    }

    /// GET a path.
    pub fn get(&mut self, path: &str) -> Result<HttpReply, ClientError> {
        self.request("GET", path, None)
    }

    /// Submit one mapping request to `POST /map` and decode the answer.
    pub fn map(&mut self, request: &MapRequest) -> Result<MapResponse, ClientError> {
        let reply = self.post("/map", &request.to_json().serialize())?;
        Ok(MapResponse::from_str(&reply.body)?)
    }

    /// The sleep before retry number `attempt + 1`: exponential from
    /// `backoff_base`, capped at `backoff_cap`, with ±25% deterministic
    /// jitter, and never below the server's `Retry-After`.
    fn backoff(&mut self, attempt: u32, retry_after_secs: Option<u64>) -> Duration {
        let base_us = u64::try_from(self.config.backoff_base.as_micros()).unwrap_or(u64::MAX);
        let cap_us = u64::try_from(self.config.backoff_cap.as_micros()).unwrap_or(u64::MAX);
        let exp_us = base_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(cap_us);
        // xorshift64* step, then map to [75%, 125%] of the exponential
        // sleep. Deterministic per seed: chaos tests replay exactly.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let r = self.jitter.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let jittered = exp_us / 4 * 3 + r % (exp_us / 2).max(1);
        let floor_us = retry_after_secs
            .map(|s| s.saturating_mul(1_000_000))
            .unwrap_or(0);
        Duration::from_micros(jittered.max(floor_us).min(cap_us.max(floor_us)))
    }
}

/// One keep-alive exchange on an existing connection. Returns whether
/// the connection is reusable afterwards, plus the reply.
fn exchange_on(
    conn: &mut KeptConn,
    method: &str,
    path: &str,
    host: &str,
    body: Option<&str>,
) -> Result<(bool, HttpReply), ClientError> {
    write_request(&mut conn.stream, method, path, host, body, true, &[])?;
    let resp = read_response(&mut conn.reader)?;
    Ok((
        resp.keep_alive,
        HttpReply {
            status: resp.status,
            body: resp.body,
            retry_after: resp.retry_after,
            backend: resp.backend,
        },
    ))
}

/// One request/response exchange with explicit timeouts, no retries.
fn request_once(
    addr: &str,
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpReply, ClientError> {
    let mut stream = connect(addr, config.connect_timeout)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol("response has no header/body split".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    let retry_after = head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse::<u64>().ok())
            .flatten()
    });
    let backend = head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("x-cfmapd-backend")
            .then(|| value.trim().to_string())
    });
    Ok(HttpReply { status, body: body.to_string(), retry_after, backend })
}

/// `TcpStream::connect` with an explicit timeout (resolves `addr` and
/// tries each candidate in turn).
fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, ClientError> {
    let mut last_err: Option<std::io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(ClientError::Io(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{addr} resolves to nothing"))
    })))
}

/// Issue one request and read the full reply (`Connection: close`),
/// using [`ClientConfig::default`] timeouts and no retries.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpReply, ClientError> {
    request_once(addr, &ClientConfig::default(), method, path, body)
}

/// POST a path with a JSON body.
pub fn post(addr: &str, path: &str, body: &str) -> Result<HttpReply, ClientError> {
    http_request(addr, "POST", path, Some(body))
}

/// GET a path.
pub fn get(addr: &str, path: &str) -> Result<HttpReply, ClientError> {
    http_request(addr, "GET", path, None)
}

/// Submit one mapping request to `POST /map` and decode the answer.
pub fn map(addr: &str, request: &MapRequest) -> Result<MapResponse, ClientError> {
    let reply = post(addr, "/map", &request.to_json().serialize())?;
    Ok(MapResponse::from_str(&reply.body)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_and_honors_retry_after() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            jitter_seed: 7,
            ..ClientConfig::default()
        };
        let mut a = Client::new("127.0.0.1:1", config.clone());
        let mut b = Client::new("127.0.0.1:1", config.clone());
        let seq_a: Vec<Duration> = (0..4).map(|i| a.backoff(i, None)).collect();
        let seq_b: Vec<Duration> = (0..4).map(|i| b.backoff(i, None)).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same sleeps");
        for (i, d) in seq_a.iter().enumerate() {
            let exp = Duration::from_millis(10 << i).min(Duration::from_millis(200));
            assert!(*d >= exp * 3 / 4 && *d <= exp * 5 / 4, "sleep {i} = {d:?} outside ±25% of {exp:?}");
        }
        // Retry-After floors the sleep even above the cap.
        let mut c = Client::new("127.0.0.1:1", config);
        assert!(c.backoff(0, Some(1)) >= Duration::from_secs(1));
    }
}
