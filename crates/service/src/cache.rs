//! A sharded, bounded LRU design cache.
//!
//! Keys are [`CanonicalProblem`]-based values (see [`crate::engine`]), so
//! permuted-but-equivalent requests land on the same entry. The map is
//! split into shards, each behind its own `RwLock`, so concurrent workers
//! on distinct shards never contend; the LRU clock is a global
//! `AtomicU64` tick, and each entry's `last_used` stamp is itself atomic
//! so the hot path (a hit) only takes the shard's *read* lock.
//!
//! Eviction is an `O(entries-in-shard)` scan for the oldest stamp, run
//! only when an insert would overflow the shard — with the small
//! per-shard capacities a mapping service uses, that beats maintaining an
//! intrusive list under a write lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Counters reported by [`ShardedLruCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Total capacity across shards.
    pub capacity: u64,
    /// Number of shards.
    pub shards: u64,
}

struct Slot<V> {
    value: V,
    last_used: AtomicU64,
}

/// A fixed-capacity concurrent LRU map.
pub struct ShardedLruCache<K, V> {
    shards: Vec<RwLock<HashMap<K, Slot<V>>>>,
    per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// A cache holding at most `capacity` entries split over `shards`
    /// shards (both clamped to ≥ 1; per-shard capacity rounds up so the
    /// total is never below `capacity`).
    pub fn new(capacity: usize, shards: usize) -> ShardedLruCache<K, V> {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        ShardedLruCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            per_shard,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up `key`, refreshing its LRU stamp on a hit. Lock-poisoning
    /// (a panicked writer) is treated as a miss rather than propagated.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = &self.shards[self.shard_of(key)];
        let hit = shard.read().ok().and_then(|map| {
            map.get(key).map(|slot| {
                slot.last_used.store(self.tick(), Ordering::Relaxed);
                slot.value.clone()
            })
        });
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's least-recently
    /// used entry if it is full.
    pub fn insert(&self, key: K, value: V) {
        let shard = &self.shards[self.shard_of(&key)];
        let Ok(mut map) = shard.write() else { return };
        if !map.contains_key(&key) && map.len() >= self.per_shard {
            let oldest = map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(k) = oldest {
                map.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, Slot { value, last_used: AtomicU64::new(self.tick()) });
    }

    /// Every resident entry, cloned out, in deterministic LRU-stamp
    /// order (oldest first). The snapshot writer serializes this; a
    /// restored shard re-inserts in the same order, so if the restoring
    /// cache is smaller the entries evicted are the coldest ones.
    pub fn export(&self) -> Vec<(K, V)> {
        let mut stamped: Vec<(u64, K, V)> = Vec::new();
        for shard in &self.shards {
            if let Ok(map) = shard.read() {
                for (k, slot) in map.iter() {
                    stamped.push((
                        slot.last_used.load(Ordering::Relaxed),
                        k.clone(),
                        slot.value.clone(),
                    ));
                }
            }
        }
        stamped.sort_by_key(|(t, _, _)| *t);
        stamped.into_iter().map(|(_, k, v)| (k, v)).collect()
    }

    /// Drop every entry; returns how many were resident.
    pub fn clear(&self) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            if let Ok(mut map) = shard.write() {
                dropped += map.len() as u64;
                map.clear();
            }
        }
        dropped
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries: u64 = self
            .shards
            .iter()
            .map(|s| s.read().map(|m| m.len() as u64).unwrap_or(0))
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            capacity: (self.per_shard * self.shards.len()) as u64,
            shards: self.shards.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_miss_counters() {
        let c: ShardedLruCache<u64, String> = ShardedLruCache::new(8, 2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_oldest() {
        // Single shard, capacity 2: touching `a` should make `b` the victim.
        let c: ShardedLruCache<u64, u64> = ShardedLruCache::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.get(&1).is_some()); // refresh 1
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let c: ShardedLruCache<u64, u64> = ShardedLruCache::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // same key: refresh, no eviction
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn clear_empties_every_shard() {
        let c: ShardedLruCache<u64, u64> = ShardedLruCache::new(16, 4);
        for k in 0..10 {
            c.insert(k, k);
        }
        assert_eq!(c.clear(), 10);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let c: Arc<ShardedLruCache<u64, u64>> = Arc::new(ShardedLruCache::new(64, 8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let k = (t * 7 + i) % 50;
                    c.insert(k, k * 2);
                    if let Some(v) = c.get(&k) {
                        assert_eq!(v, k * 2);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.stats().entries <= 64);
    }
}
