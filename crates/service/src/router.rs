//! `cfmapd-router` — a cache-affine, health-checked reverse proxy in
//! front of a fleet of `cfmapd` backends.
//!
//! One `cfmapd` process is one failure domain: a panic loop, an OOM
//! kill, or a drain takes the whole mapping service down. The router
//! turns N daemons into a fleet while *preserving the design-cache
//! locality* that makes warm traffic fast:
//!
//! * **Cache-affine placement.** The router parses a `/map` body just
//!   far enough to canonicalize the problem (the same
//!   [`canonical_problem`] the engine's cache keys on) and
//!   consistent-hashes the canonical key onto a ring of backends with
//!   [`RouterConfig::replicas`] virtual nodes per backend. Permuted-
//!   but-equivalent problems canonicalize identically, so they land on
//!   the same backend and hit the same cache entry — scale-out does not
//!   shred the cache.
//! * **Health-checked failover.** Per-backend health state is driven by
//!   periodic `GET /healthz` probes (which also read the `draining`
//!   flag, so a draining backend stops receiving traffic before it
//!   sheds) *and* by passive observation of live-traffic failures.
//! * **Circuit breakers.** Each backend has a three-state breaker:
//!   *closed* → *open* after [`RouterConfig::failure_threshold`]
//!   consecutive transport failures or unexpected 5xxs → *half-open*
//!   after [`RouterConfig::open_cooldown`], admitting a single trial
//!   whose outcome closes or re-opens the circuit. A `503` carrying
//!   `Retry-After` is the backend's *admission shed* — healthy but
//!   busy — and never counts toward the breaker.
//! * **Bounded failover.** Idempotent mapping requests that fail at the
//!   transport level fail over to the next distinct backend on the
//!   ring, up to [`RouterConfig::failover_budget`] extra attempts.
//!   Every forwarded answer carries `X-Cfmapd-Backend` so callers (and
//!   the chaos tests) can assert affinity.
//! * **Load-aware shedding.** When every candidate backend is
//!   open-circuit, draining, or unreachable, the router answers a
//!   well-formed `503` + `Retry-After` ([`RouterReject`]) immediately —
//!   never a hang, never a bare RST.
//!
//! Routes:
//!
//! | route | behavior |
//! |---|---|
//! | `POST /map` | canonicalize, ring-route, forward with failover |
//! | `POST /pareto` | canonicalize when space-pinned (else raw-body hash), ring-route, forward |
//! | `POST /batch` | ring-route by the first canonicalizable member |
//! | `GET /healthz` | router liveness + backend up-counts |
//! | `GET /readyz` | `200` while ≥ 1 backend is routable, else `503` |
//! | `GET /backends` | per-backend health/circuit/pool state (JSON) |
//! | `GET /metrics` | the router's own Prometheus registry |
//! | `POST /shutdown` | drain and exit |

use crate::engine::{canonical_problem, pareto_affinity_problem};
use crate::http::{read_request, write_response_extra, ReadError, Response};
use crate::json::{parse, Json};
use crate::wire::{MapRequest, ParetoRequest, RouterReject, RouterRejectKind};
use crate::server::ShutdownHandle;
use cfmap_core::metrics::{Counter, Gauge, Histogram, Registry, DEFAULT_LATENCY_BUCKETS_US};
use cfmap_core::CanonicalProblem;
use std::io::BufReader;
use std::str::FromStr;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a router worker waits on a slow downstream client.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Idle patience between requests on a kept-alive downstream connection
/// (mirrors the daemon's own keep-alive idle clock).
const KEEPALIVE_IDLE_TIMEOUT: Duration = Duration::from_secs(2);

/// `Content-Type` of JSON answers.
const CT_JSON: &str = "application/json";

/// `Content-Type` of `/metrics`.
const CT_METRICS: &str = "text/plain; version=0.0.4";

/// Router configuration (all fields have serviceable defaults except
/// `backends`, which must be non-empty for the router to be useful).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend `cfmapd` addresses (`host:port`), in any order — ring
    /// placement hashes the address string, so it is stable under
    /// reordering.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the consistent-hash ring. More
    /// replicas smooth the key distribution; 64 keeps the imbalance a
    /// few percent at fleet sizes this router targets.
    pub replicas: usize,
    /// Worker threads serving downstream connections.
    pub workers: usize,
    /// Admission-queue slots (downstream connections accepted but not
    /// yet claimed by a worker); beyond this, shed with `503`.
    pub queue_capacity: usize,
    /// Period of the background `/healthz` probe loop.
    pub health_interval: Duration,
    /// Consecutive failures that trip a backend's circuit open.
    pub failure_threshold: u32,
    /// How long an open circuit waits before admitting one half-open
    /// trial.
    pub open_cooldown: Duration,
    /// Extra backends tried after the primary fails at the transport
    /// level (0 = no failover).
    pub failover_budget: usize,
    /// TCP connect timeout toward a backend.
    pub connect_timeout: Duration,
    /// Read timeout toward a backend (a response may take a full
    /// budgeted search).
    pub read_timeout: Duration,
    /// Idle keep-alive connections pooled per backend.
    pub pool_capacity: usize,
    /// Requests sent on one pooled upstream connection before it is
    /// retired (stays below the backend's own per-connection bound so
    /// the backend never hangs up mid-checkout).
    pub max_requests_per_conn: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            replicas: 64,
            workers: 8,
            queue_capacity: 128,
            health_interval: Duration::from_millis(500),
            failure_threshold: 3,
            open_cooldown: Duration::from_secs(1),
            failover_budget: 2,
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(30),
            pool_capacity: 8,
            max_requests_per_conn: 90,
        }
    }
}

/// Circuit-breaker state of one backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Circuit {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests skip this backend until the cooldown passes.
    Open,
    /// One trial request is in flight; its outcome decides.
    HalfOpen,
}

impl Circuit {
    /// The `cfmapd_router_circuit_state` gauge encoding.
    fn gauge_value(self) -> i64 {
        match self {
            Circuit::Closed => 0,
            Circuit::Open => 1,
            Circuit::HalfOpen => 2,
        }
    }
}

/// What the breaker says about sending one request now.
enum Admission {
    /// Circuit closed — go ahead.
    Allow,
    /// Circuit was open, cooldown elapsed — this request is the single
    /// half-open trial.
    Trial,
    /// Circuit open (or a trial already in flight) — skip this backend.
    Refuse,
}

/// Mutable breaker state, behind the backend's mutex.
struct BreakerInner {
    circuit: Circuit,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// One idle upstream connection plus how many requests it has carried.
struct PooledConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    served: usize,
}

/// Per-backend state: address, probe-driven health, breaker, and the
/// keep-alive connection pool.
struct Backend {
    addr: String,
    /// Last probe reached the backend and it answered 200.
    up: AtomicBool,
    /// Backend is willing to take new traffic (up and not draining).
    ready: AtomicBool,
    breaker: Mutex<BreakerInner>,
    pool: Mutex<Vec<PooledConn>>,
    // Metrics, labeled by backend address.
    up_gauge: Arc<Gauge>,
    circuit_gauge: Arc<Gauge>,
    half_open_probes: Arc<Counter>,
    upstream_latency: Arc<Histogram>,
}

impl Backend {
    fn new(addr: String, registry: &Registry) -> Backend {
        let labels = [("backend", addr.as_str())];
        let up_gauge = registry.gauge(
            "cfmapd_router_backend_up",
            "1 while the last health probe of this backend succeeded",
            &labels,
        );
        let circuit_gauge = registry.gauge(
            "cfmapd_router_circuit_state",
            "Circuit breaker state per backend (0 closed, 1 open, 2 half-open)",
            &labels,
        );
        let half_open_probes = registry.counter(
            "cfmapd_router_half_open_probes_total",
            "Half-open trial requests admitted per backend",
            &labels,
        );
        let upstream_latency = registry.histogram(
            "cfmapd_router_upstream_duration_seconds",
            "Forwarded-request latency per backend",
            &labels,
            DEFAULT_LATENCY_BUCKETS_US,
        );
        Backend {
            addr,
            up: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            breaker: Mutex::new(BreakerInner {
                circuit: Circuit::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
            pool: Mutex::new(Vec::new()),
            up_gauge,
            circuit_gauge,
            half_open_probes,
            upstream_latency,
        }
    }

    fn breaker(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        // Breaker state stays coherent even if a panicking thread
        // poisoned the lock: every mutation leaves a valid state.
        self.breaker.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current circuit state (for `/backends` and tests).
    fn circuit(&self) -> Circuit {
        self.breaker().circuit
    }

    /// May a request be sent to this backend right now?
    fn admit(&self, cooldown: Duration) -> Admission {
        let mut b = self.breaker();
        match b.circuit {
            Circuit::Closed => Admission::Allow,
            Circuit::HalfOpen => Admission::Refuse,
            Circuit::Open => {
                let elapsed = b.opened_at.map(|t| t.elapsed()).unwrap_or(Duration::MAX);
                if elapsed >= cooldown {
                    b.circuit = Circuit::HalfOpen;
                    self.circuit_gauge.set(Circuit::HalfOpen.gauge_value());
                    self.half_open_probes.inc();
                    Admission::Trial
                } else {
                    Admission::Refuse
                }
            }
        }
    }

    /// A forwarded request (or probe) got a healthy answer.
    fn record_success(&self) {
        let mut b = self.breaker();
        b.consecutive_failures = 0;
        if b.circuit != Circuit::Closed {
            b.circuit = Circuit::Closed;
            b.opened_at = None;
            self.circuit_gauge.set(Circuit::Closed.gauge_value());
        }
    }

    /// A forwarded request (or probe) failed at the transport level, or
    /// a backend answered an unexpected 5xx.
    fn record_failure(&self, threshold: u32) {
        let mut b = self.breaker();
        match b.circuit {
            Circuit::HalfOpen => {
                // The trial failed: back to open, cooldown restarts.
                b.circuit = Circuit::Open;
                b.opened_at = Some(Instant::now());
                self.circuit_gauge.set(Circuit::Open.gauge_value());
            }
            Circuit::Closed => {
                b.consecutive_failures = b.consecutive_failures.saturating_add(1);
                if b.consecutive_failures >= threshold {
                    b.circuit = Circuit::Open;
                    b.opened_at = Some(Instant::now());
                    self.circuit_gauge.set(Circuit::Open.gauge_value());
                }
            }
            Circuit::Open => {}
        }
    }

    /// Pop an idle pooled connection, if any.
    fn checkout(&self) -> Option<PooledConn> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    /// Return a still-healthy keep-alive connection to the pool.
    fn park(&self, conn: PooledConn, pool_capacity: usize) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < pool_capacity {
            pool.push(conn);
        }
    }

    /// Drop every pooled connection (after a transport failure the
    /// siblings are likely dead too — a killed backend leaves a pool
    /// full of half-closed sockets).
    fn drain_pool(&self) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    fn pooled(&self) -> usize {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A consistent-hash ring: sorted virtual-node points mapping a key
/// hash to a backend index, with ring-order successor walk for
/// failover candidates.
struct Ring {
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    fn new(backend_addrs: &[String], replicas: usize) -> Ring {
        let mut points = Vec::with_capacity(backend_addrs.len() * replicas);
        for (idx, addr) in backend_addrs.iter().enumerate() {
            for r in 0..replicas.max(1) {
                points.push((fnv1a64(format!("{addr}#{r}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        Ring { points, backends: backend_addrs.len() }
    }

    /// The first `want` *distinct* backends at and after `hash` in ring
    /// order — the primary plus its failover successors.
    fn candidates(&self, hash: u64, want: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(want.min(self.backends));
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|&(p, _)| p < hash);
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            if !out.contains(&idx) {
                out.push(idx);
                if out.len() >= want.min(self.backends) {
                    break;
                }
            }
        }
        out
    }
}

/// 64-bit FNV-1a with a splitmix64 finalizer. The ring must hash
/// identically across processes and runs (affinity assertions replay
/// from seeds), so the keyed std hasher is out. Raw FNV avalanches
/// poorly into the high bits on short inputs, and the ring orders
/// points by the full 64-bit value — without the finalizer, three
/// backends at 64 vnodes can end up with a 5:4:1 key split.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A stable byte encoding of a canonical problem — the affinity key.
/// (`Hash` impls are not stable across Rust versions; this string is.)
fn canonical_key(p: &CanonicalProblem) -> String {
    fn rows(rows: &[Vec<i64>]) -> String {
        rows.iter()
            .map(|r| r.iter().map(i64::to_string).collect::<Vec<_>>().join(","))
            .collect::<Vec<_>>()
            .join(";")
    }
    format!(
        "mu={}|deps={}|space={}",
        p.mu.iter().map(i64::to_string).collect::<Vec<_>>().join(","),
        rows(&p.deps),
        rows(&p.space),
    )
}

/// Why the router answered a request locally instead of hashing it to a
/// backend. The two arms carry different wire shapes: a bad `/map` body
/// echoes the backend's own `MapResponse::BadRequest`, while a provably
/// unusable `/batch` has no member to answer for and gets a
/// router-level 400 [`RouterReject`].
enum AffinityError {
    /// `/map` body every backend would reject with a 400.
    Map(String),
    /// `/batch` body with an empty or wholly non-canonicalizable
    /// `requests` array.
    Batch(String),
    /// `/pareto` body every backend would reject with a 400.
    Pareto(String),
}

/// Shared router state behind every worker and the prober.
struct RouterCore {
    config: RouterConfig,
    backends: Vec<Backend>,
    ring: Ring,
    registry: Arc<Registry>,
    failovers: Arc<Counter>,
    sheds: Arc<Counter>,
    shutdown: Arc<AtomicBool>,
}

impl RouterCore {
    /// Compute the affinity hash for a forwarded body, if it
    /// canonicalizes. `/map` bodies canonicalize directly; `/batch`
    /// bodies use their first canonicalizable member (a batch of
    /// equivalent problems still lands with its cache entry). A `/batch`
    /// whose `requests` array is empty or wholly non-canonicalizable is
    /// rejected locally — every backend would 400 it, so forwarding only
    /// burns an upstream round-trip. A body without a parseable
    /// `requests` array routes by raw-content hash — the backend
    /// produces the authoritative 400.
    fn affinity_hash(&self, path: &str, body: &str) -> Result<u64, AffinityError> {
        if path == "/map" {
            let req = MapRequest::from_str(body).map_err(|e| AffinityError::Map(e.msg))?;
            let problem = canonical_problem(&req).map_err(AffinityError::Map)?;
            return Ok(fnv1a64(canonical_key(&problem).as_bytes()));
        }
        if path == "/pareto" {
            // Fixed-space frontiers canonicalize like the engine's
            // frontier cache; other scopes hash the raw body, so
            // identical requests still co-locate with their entry.
            let req =
                ParetoRequest::from_str(body).map_err(|e| AffinityError::Pareto(e.msg))?;
            return match pareto_affinity_problem(&req).map_err(AffinityError::Pareto)? {
                Some(problem) => Ok(fnv1a64(canonical_key(&problem).as_bytes())),
                None => Ok(fnv1a64(body.as_bytes())),
            };
        }
        // /batch: first member that parses and canonicalizes wins.
        if let Ok(json) = parse(body) {
            if let Some(arr) = json.get("requests").and_then(Json::as_arr) {
                if arr.is_empty() {
                    return Err(AffinityError::Batch(
                        "batch \"requests\" array is empty".into(),
                    ));
                }
                for item in arr {
                    if let Ok(req) = MapRequest::from_json(item) {
                        if let Ok(problem) = canonical_problem(&req) {
                            return Ok(fnv1a64(canonical_key(&problem).as_bytes()));
                        }
                    }
                }
                return Err(AffinityError::Batch(format!(
                    "none of the {} batch members parses into a canonicalizable request",
                    arr.len()
                )));
            }
        }
        Ok(fnv1a64(body.as_bytes()))
    }

    /// Send one request to one backend over a pooled (or fresh)
    /// keep-alive connection. A transport error on a *reused*
    /// connection retries once on a fresh one — a retired-by-the-peer
    /// pooled socket is not evidence against the backend. Only a fresh
    /// connection's failure propagates as `Err`.
    fn send(
        &self,
        backend: &Backend,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<Response> {
        let started = Instant::now();
        // Stale pooled connections: try each, discarding failures.
        while let Some(conn) = backend.checkout() {
            let mut conn = conn;
            match exchange(&mut conn, method, path, &backend.addr, body) {
                Ok(resp) => {
                    conn.served += 1;
                    if resp.keep_alive && conn.served < self.config.max_requests_per_conn {
                        backend.park(conn, self.config.pool_capacity);
                    }
                    backend.upstream_latency.observe(started.elapsed());
                    return Ok(resp);
                }
                Err(_) => continue, // stale; fall through to the next / a fresh conn
            }
        }
        let stream = connect(&backend.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut conn = PooledConn { stream, reader, served: 0 };
        let resp = exchange(&mut conn, method, path, &backend.addr, body)?;
        conn.served += 1;
        if resp.keep_alive && conn.served < self.config.max_requests_per_conn {
            backend.park(conn, self.config.pool_capacity);
        }
        backend.upstream_latency.observe(started.elapsed());
        Ok(resp)
    }

    /// Route one mapping request: pick ring candidates, walk them under
    /// the breaker, fail over on transport errors, and produce the
    /// downstream answer. Always returns a well-formed response.
    fn forward(&self, method: &str, path: &str, body: &str) -> (u16, String, Vec<(String, String)>) {
        if self.backends.is_empty() {
            let reject = RouterReject {
                kind: RouterRejectKind::NoBackends,
                message: "router has no configured backends".into(),
                attempted: 0,
            };
            self.sheds.inc();
            return (
                reject.kind.http_status(),
                reject.to_json().serialize(),
                vec![("Retry-After".into(), "1".into())],
            );
        }
        let hash = match self.affinity_hash(path, body) {
            Ok(h) => h,
            Err(AffinityError::Map(msg)) => {
                // The router rejects what every backend would reject,
                // with the same body shape, without a round-trip.
                let resp = crate::wire::MapResponse::BadRequest { msg };
                return (resp.http_status(), resp.to_json().serialize(), Vec::new());
            }
            Err(AffinityError::Pareto(msg)) => {
                let resp = crate::wire::ParetoResponse::BadRequest { msg };
                return (resp.http_status(), resp.to_json().serialize(), Vec::new());
            }
            Err(AffinityError::Batch(message)) => {
                // A provably unusable batch gets a router-level 400:
                // there is no member to echo a backend-shaped answer
                // for, so the reject carries the router body shape.
                let reject =
                    RouterReject { kind: RouterRejectKind::BadRequest, message, attempted: 0 };
                return (reject.kind.http_status(), reject.to_json().serialize(), Vec::new());
            }
        };
        let candidates = self.ring.candidates(hash, self.config.failover_budget + 1);
        let mut attempted: u64 = 0;
        for (slot, &idx) in candidates.iter().enumerate() {
            let backend = &self.backends[idx];
            match backend.admit(self.config.open_cooldown) {
                Admission::Refuse => continue,
                Admission::Allow => {
                    // A draining (or never-probed-up) backend is skipped
                    // while an alternative exists; with no alternative
                    // it still gets the request — the backend's own shed
                    // beats a router-fabricated rejection.
                    if !backend.ready.load(Ordering::SeqCst) && slot + 1 < candidates.len() {
                        continue;
                    }
                }
                Admission::Trial => {}
            }
            attempted += 1;
            if attempted > 1 {
                self.failovers.inc();
            }
            match self.send(backend, method, path, body) {
                Ok(resp) => {
                    // A shed (503 + Retry-After) is a healthy backend
                    // saying "busy" — it must not push the breaker
                    // toward open, or load spikes would amplify into
                    // fleet-wide circuit trips. Everything else 5xx is
                    // evidence of a sick backend.
                    if resp.status == 503 && resp.retry_after.is_some() {
                        backend.record_success();
                    } else if resp.status >= 500 {
                        backend.record_failure(self.config.failure_threshold);
                    } else {
                        backend.record_success();
                    }
                    self.registry
                        .counter(
                            "cfmapd_router_requests_total",
                            "Requests forwarded, by backend and upstream status",
                            &[("backend", &backend.addr), ("status", &resp.status.to_string())],
                        )
                        .inc();
                    let mut headers = vec![("X-Cfmapd-Backend".to_string(), backend.addr.clone())];
                    if let Some(secs) = resp.retry_after {
                        headers.push(("Retry-After".into(), secs.to_string()));
                    }
                    return (resp.status, resp.body, headers);
                }
                Err(_) => {
                    backend.drain_pool();
                    backend.record_failure(self.config.failure_threshold);
                    self.registry
                        .counter(
                            "cfmapd_router_requests_total",
                            "Requests forwarded, by backend and upstream status",
                            &[("backend", &backend.addr), ("status", "transport_error")],
                        )
                        .inc();
                    // Loop on: the next distinct ring backend is the
                    // failover target.
                }
            }
        }
        let reject = if attempted == 0 {
            self.sheds.inc();
            RouterReject {
                kind: RouterRejectKind::AllCircuitsOpen,
                message: format!(
                    "no routable backend among {} candidates (open circuits or draining)",
                    candidates.len()
                ),
                attempted,
            }
        } else if attempted == 1 {
            RouterReject {
                kind: RouterRejectKind::UpstreamUnreachable,
                message: format!(
                    "backend {} unreachable and no failover candidate answered",
                    self.backends[candidates[0]].addr
                ),
                attempted,
            }
        } else {
            RouterReject {
                kind: RouterRejectKind::FailoverExhausted,
                message: format!("all {attempted} attempted backends failed at transport level"),
                attempted,
            }
        };
        let mut headers = Vec::new();
        if reject.kind.http_status() == 503 {
            headers.push(("Retry-After".to_string(), "1".to_string()));
        }
        (reject.kind.http_status(), reject.to_json().serialize(), headers)
    }

    /// One probe pass over every backend. Updates `up`/`ready`, and
    /// drives open circuits through their half-open recovery without
    /// waiting for live traffic to volunteer as the trial.
    fn probe_all(&self) {
        for backend in &self.backends {
            let alive = probe_healthz(&backend.addr, self.config.connect_timeout);
            match alive {
                Some(health) => {
                    backend.up.store(true, Ordering::SeqCst);
                    backend.up_gauge.set(1);
                    let ready = !health.draining;
                    backend.ready.store(ready, Ordering::SeqCst);
                    // A reachable backend heals its breaker — but only
                    // through the half-open gate, so the recovery is
                    // observable and a flapping backend re-opens fast.
                    match backend.admit(self.config.open_cooldown) {
                        Admission::Trial => backend.record_success(),
                        Admission::Allow | Admission::Refuse => {}
                    }
                }
                None => {
                    backend.up.store(false, Ordering::SeqCst);
                    backend.ready.store(false, Ordering::SeqCst);
                    backend.up_gauge.set(0);
                    backend.record_failure(self.config.failure_threshold);
                }
            }
        }
    }

    /// Is any backend currently routable (for `/readyz`)?
    fn any_routable(&self) -> bool {
        self.backends
            .iter()
            .any(|b| b.ready.load(Ordering::SeqCst) && b.circuit() != Circuit::Open)
    }
}

/// What a `/healthz` probe learned.
struct ProbedHealth {
    draining: bool,
}

/// Probe one backend's `/healthz` over a fresh short-timeout
/// connection. `None` means unreachable or non-200.
fn probe_healthz(addr: &str, connect_timeout: Duration) -> Option<ProbedHealth> {
    let stream = connect(addr, connect_timeout).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok()?;
    let reader = BufReader::new(stream.try_clone().ok()?);
    let mut conn = PooledConn { stream, reader, served: 0 };
    let resp = exchange(&mut conn, "GET", "/healthz", addr, "").ok()?;
    if resp.status != 200 {
        return None;
    }
    let draining = parse(&resp.body)
        .ok()
        .and_then(|j| j.get("draining").and_then(Json::as_bool))
        .unwrap_or(false);
    Some(ProbedHealth { draining })
}

/// Write one keep-alive request on `conn` and read the framed response.
fn exchange(
    conn: &mut PooledConn,
    method: &str,
    path: &str,
    host: &str,
    body: &str,
) -> std::io::Result<Response> {
    let payload = if body.is_empty() { None } else { Some(body) };
    crate::http::write_request(&mut conn.stream, method, path, host, payload, true, &[])?;
    crate::http::read_response(&mut conn.reader)
}

/// `TcpStream::connect` with an explicit timeout over every resolved
/// candidate address.
fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let mut last: Option<std::io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{addr} resolves to nothing"))
    }))
}

/// A bound (but not yet running) router.
pub struct CfmapRouter {
    listener: TcpListener,
    core: Arc<RouterCore>,
}

impl CfmapRouter {
    /// Bind to `config.addr` and build the ring and backend table.
    pub fn bind(config: &RouterConfig) -> std::io::Result<CfmapRouter> {
        let listener = TcpListener::bind(&config.addr)?;
        let registry = Arc::new(Registry::new());
        let backends: Vec<Backend> =
            config.backends.iter().map(|a| Backend::new(a.clone(), &registry)).collect();
        let ring = Ring::new(&config.backends, config.replicas);
        let failovers = registry.counter(
            "cfmapd_router_failovers_total",
            "Mapping requests retried on a failover backend after a transport failure",
            &[],
        );
        let sheds = registry.counter(
            "cfmapd_router_shed_total",
            "Requests the router answered 503 itself because no backend was routable",
            &[],
        );
        let core = Arc::new(RouterCore {
            config: config.clone(),
            backends,
            ring,
            registry,
            failovers,
            sheds,
            shutdown: Arc::new(AtomicBool::new(false)),
        });
        Ok(CfmapRouter { listener, core })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`CfmapRouter::run`] from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle::new(Arc::clone(&self.core.shutdown), self.local_addr()?))
    }

    /// The router's metrics registry (tests scrape it in-process).
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.core.registry)
    }

    /// Accept and serve until shutdown. Spawns the health prober and a
    /// fixed worker pool; returns once both have wound down.
    pub fn run(self) -> std::io::Result<()> {
        let CfmapRouter { listener, core } = self;
        // First probe before accepting: the very first request should
        // already know which backends are up.
        core.probe_all();
        let prober = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || {
                let step = Duration::from_millis(25);
                loop {
                    let mut waited = Duration::ZERO;
                    while waited < core.config.health_interval {
                        if core.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        let nap = step.min(core.config.health_interval - waited);
                        std::thread::sleep(nap);
                        waited += nap;
                    }
                    if core.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    core.probe_all();
                }
            })
        };
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(core.config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(core.config.workers.max(1));
        for _ in 0..core.config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let core = Arc::clone(&core);
            pool.push(std::thread::spawn(move || loop {
                let conn = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                let Ok(stream) = conn else { break };
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_downstream(stream, &core);
                }));
            }));
        }
        for conn in listener.incoming() {
            if core.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(stream)) => {
                    core.sheds.inc();
                    shed_downstream(stream);
                }
                Err(mpsc::TrySendError::Disconnected(_)) => break,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        let _ = prober.join();
        Ok(())
    }
}

/// Answer a shed downstream connection with `503` + `Retry-After` on a
/// short-lived thread (mirrors the daemon's own shed path).
fn shed_downstream(stream: TcpStream) {
    std::thread::spawn(move || {
        let mut stream = stream;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        if let Ok(clone) = stream.try_clone() {
            let mut reader = BufReader::new(clone);
            let _ = read_request(&mut reader);
        }
        let body = RouterReject {
            kind: RouterRejectKind::AllCircuitsOpen,
            message: "router admission queue full; retry after the Retry-After delay".into(),
            attempted: 0,
        }
        .to_json()
        .serialize();
        let _ =
            write_response_extra(&mut stream, 503, CT_JSON, &body, &[("Retry-After", "1")], false);
    });
}

/// Serve one downstream connection, honoring client keep-alive.
fn serve_downstream(stream: TcpStream, core: &RouterCore) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let mut served = 0usize;
    loop {
        let (status, content_type, body, headers, client_keep_alive) =
            match read_request(&mut reader) {
                Err(ReadError::Empty) => return,
                Err(ReadError::TooLarge) => {
                    (413, CT_JSON, error_body("request body too large"), Vec::new(), false)
                }
                Err(ReadError::Malformed(msg)) => (400, CT_JSON, error_body(&msg), Vec::new(), false),
                Ok(req) => {
                    let keep = req.keep_alive;
                    let (status, ct, body, headers) = dispatch(core, &req.method, &req.path, &req.body);
                    (status, ct, body, headers, keep)
                }
            };
        served += 1;
        let keep = client_keep_alive
            && served < core.config.max_requests_per_conn.max(2)
            && !core.shutdown.load(Ordering::SeqCst);
        let header_refs: Vec<(&str, &str)> =
            headers.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let write_ok =
            write_response_extra(&mut stream, status, content_type, &body, &header_refs, keep)
                .is_ok();
        if core.shutdown.load(Ordering::SeqCst) {
            // Unblock the accept loop so it observes the flag.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            }
            return;
        }
        if !keep || !write_ok {
            return;
        }
        let _ = stream.set_read_timeout(Some(KEEPALIVE_IDLE_TIMEOUT));
    }
}

/// Route one parsed downstream request.
fn dispatch(
    core: &RouterCore,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, &'static str, String, Vec<(String, String)>) {
    match (method, path) {
        ("POST", "/map") | ("POST", "/pareto") | ("POST", "/batch") => {
            let (status, body, headers) = core.forward(method, path, body);
            (status, CT_JSON, body, headers)
        }
        ("GET", "/metrics") => (200, CT_METRICS, core.registry.render_prometheus(), Vec::new()),
        ("GET", "/healthz") => {
            let up = core.backends.iter().filter(|b| b.up.load(Ordering::SeqCst)).count();
            let json = Json::Obj(vec![
                ("status".into(), Json::Str("ok".into())),
                ("backends".into(), Json::Int(core.backends.len() as i64)),
                ("backends_up".into(), Json::Int(up as i64)),
            ]);
            (200, CT_JSON, json.serialize(), Vec::new())
        }
        ("GET", "/readyz") => {
            if core.any_routable() {
                let json = Json::Obj(vec![("status".into(), Json::Str("ok".into()))]);
                (200, CT_JSON, json.serialize(), Vec::new())
            } else {
                let json = Json::Obj(vec![("status".into(), Json::Str("no_backends".into()))]);
                (503, CT_JSON, json.serialize(), vec![("Retry-After".into(), "1".into())])
            }
        }
        ("GET", "/backends") => {
            let list: Vec<Json> = core
                .backends
                .iter()
                .map(|b| {
                    Json::Obj(vec![
                        ("addr".into(), Json::Str(b.addr.clone())),
                        ("up".into(), Json::Bool(b.up.load(Ordering::SeqCst))),
                        ("ready".into(), Json::Bool(b.ready.load(Ordering::SeqCst))),
                        (
                            "circuit".into(),
                            Json::Str(
                                match b.circuit() {
                                    Circuit::Closed => "closed",
                                    Circuit::Open => "open",
                                    Circuit::HalfOpen => "half_open",
                                }
                                .into(),
                            ),
                        ),
                        ("pooled_connections".into(), Json::Int(b.pooled() as i64)),
                    ])
                })
                .collect();
            let json = Json::Obj(vec![("backends".into(), Json::Arr(list))]);
            (200, CT_JSON, json.serialize(), Vec::new())
        }
        ("POST", "/shutdown") => {
            core.shutdown.store(true, Ordering::SeqCst);
            let json = Json::Obj(vec![("status".into(), Json::Str("shutting_down".into()))]);
            (200, CT_JSON, json.serialize(), Vec::new())
        }
        _ => (404, CT_JSON, error_body(&format!("no route {method} {path}")), Vec::new()),
    }
}

fn error_body(msg: &str) -> String {
    Json::Obj(vec![
        ("status".into(), Json::Str("bad_request".into())),
        ("message".into(), Json::Str(msg.into())),
    ])
    .serialize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_placement_is_deterministic_and_stable_under_reorder() {
        let a = vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".into(), "127.0.0.1:3".into()];
        let mut b = a.clone();
        b.rotate_left(1);
        let ring_a = Ring::new(&a, 64);
        let ring_b = Ring::new(&b, 64);
        for key in 0..200u64 {
            let h = fnv1a64(&key.to_le_bytes());
            let pick_a = &a[ring_a.candidates(h, 1)[0]];
            let pick_b = &b[ring_b.candidates(h, 1)[0]];
            assert_eq!(pick_a, pick_b, "placement must not depend on backend-list order");
        }
    }

    #[test]
    fn ring_candidates_are_distinct_and_exhaustive() {
        let addrs: Vec<String> = (0..4).map(|i| format!("10.0.0.{i}:7971")).collect();
        let ring = Ring::new(&addrs, 16);
        let cands = ring.candidates(fnv1a64(b"some-key"), 10);
        assert_eq!(cands.len(), 4, "want capped at backend count");
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "candidates must be distinct: {cands:?}");
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let addrs: Vec<String> = (0..3).map(|i| format!("10.0.0.{i}:7971")).collect();
        let ring = Ring::new(&addrs, 64);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.candidates(fnv1a64(&key.to_le_bytes()), 1)[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 3000 / 3 / 3 && c < 3000 * 2 / 3,
                "backend {i} got {c}/3000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_through_half_open() {
        let registry = Registry::new();
        let b = Backend::new("127.0.0.1:9".into(), &registry);
        let threshold = 3;
        let cooldown = Duration::from_millis(10);
        assert!(matches!(b.admit(cooldown), Admission::Allow));
        b.record_failure(threshold);
        b.record_failure(threshold);
        assert_eq!(b.circuit(), Circuit::Closed, "below threshold stays closed");
        b.record_failure(threshold);
        assert_eq!(b.circuit(), Circuit::Open);
        assert!(matches!(b.admit(cooldown), Admission::Refuse), "fresh open refuses");
        std::thread::sleep(cooldown * 2);
        assert!(matches!(b.admit(cooldown), Admission::Trial), "cooldown admits one trial");
        assert!(
            matches!(b.admit(cooldown), Admission::Refuse),
            "only one half-open trial at a time"
        );
        b.record_success();
        assert_eq!(b.circuit(), Circuit::Closed);
        assert!(matches!(b.admit(cooldown), Admission::Allow));
        // A failed trial re-opens and restarts the cooldown.
        for _ in 0..threshold {
            b.record_failure(threshold);
        }
        std::thread::sleep(cooldown * 2);
        assert!(matches!(b.admit(cooldown), Admission::Trial));
        b.record_failure(threshold);
        assert_eq!(b.circuit(), Circuit::Open);
        assert!(matches!(b.admit(cooldown), Admission::Refuse));
    }

    #[test]
    fn success_resets_consecutive_failure_count() {
        let registry = Registry::new();
        let b = Backend::new("127.0.0.1:9".into(), &registry);
        b.record_failure(3);
        b.record_failure(3);
        b.record_success();
        b.record_failure(3);
        b.record_failure(3);
        assert_eq!(b.circuit(), Circuit::Closed, "interleaved successes keep the circuit closed");
    }

    #[test]
    fn canonical_key_is_permutation_invariant() {
        // Matmul with axes relabeled (μ and the space row permuted the
        // same way, dependence columns reordered) canonicalizes to the
        // same problem — so the router places both on the same backend.
        let original = MapRequest {
            algorithm: None,
            mu: vec![4, 4, 4],
            deps: Some(vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]]),
            space: vec![vec![1, 1, -1]],
            cap: None,
            max_candidates: None,
            timeout_ms: None,
            deadline_ms: None,
        };
        let permuted = MapRequest {
            deps: Some(vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]),
            space: vec![vec![-1, 1, 1]],
            ..original.clone()
        };
        let key_a = canonical_key(&canonical_problem(&original).expect("canonicalizes"));
        let key_b = canonical_key(&canonical_problem(&permuted).expect("canonicalizes"));
        assert_eq!(key_a, key_b, "equivalent problems must share an affinity key");
        assert_eq!(fnv1a64(key_a.as_bytes()), fnv1a64(key_b.as_bytes()));
    }
}
